"""Per-function control-flow graphs over the stdlib AST.

One :class:`CFG` covers one *unit*: a module body, a function, or a
lambda-free method.  Nested ``def``/``class`` statements are treated as
plain name bindings — each nested function gets its own CFG via
:func:`iter_function_units`.

Blocks hold the statements that execute straight-line; compound
statements (``if``/``while``/``for``/``try``/``with``/``match``) place
their *header* node in the block where the test/iterable evaluates and
hang their bodies off successor blocks.  ``break``/``continue``/
``return``/``raise`` terminate a block with the appropriate edge.  The
graph over-approximates feasibility (both branches of every test are
assumed reachable; every statement of a ``try`` body may jump to every
handler), which is the right direction for a linter: a fact is reported
only when it holds on *some* path, never asserted to hold on all.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple, Union

FunctionUnit = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class Block:
    """A straight-line run of statements."""

    bid: int
    stmts: List[ast.stmt] = field(default_factory=list)
    succs: Set[int] = field(default_factory=set)
    preds: Set[int] = field(default_factory=set)


class CFG:
    """Control-flow graph of one function/module body."""

    def __init__(self, unit: FunctionUnit, name: str) -> None:
        self.unit = unit
        self.name = name
        self.blocks: List[Block] = []
        self.entry = self._new_block()
        self.exit = self._new_block()

    def _new_block(self) -> int:
        block = Block(bid=len(self.blocks))
        self.blocks.append(block)
        return block.bid

    def add_edge(self, src: int, dst: int) -> None:
        self.blocks[src].succs.add(dst)
        self.blocks[dst].preds.add(src)

    def block(self, bid: int) -> Block:
        return self.blocks[bid]

    def __len__(self) -> int:
        return len(self.blocks)


class _Builder:
    """Recursive-descent CFG construction."""

    def __init__(self, unit: FunctionUnit, name: str) -> None:
        self.cfg = CFG(unit, name)
        #: (loop_header, loop_exit) targets for continue/break.
        self.loops: List[Tuple[int, int]] = []

    def build(self) -> CFG:
        body = self.cfg.unit.body
        start = self.cfg._new_block()
        self.cfg.add_edge(self.cfg.entry, start)
        end = self._stmts(body, start)
        if end is not None:
            self.cfg.add_edge(end, self.cfg.exit)
        return self.cfg

    # ------------------------------------------------------------------
    def _stmts(self, body: List[ast.stmt], cur: Optional[int]) -> Optional[int]:
        """Thread ``body`` through the graph starting at block ``cur``.

        Returns the block open at the end, or ``None`` when every path
        through ``body`` left via return/raise/break/continue.
        """
        for stmt in body:
            if cur is None:
                # Unreachable code after a terminator; give it its own
                # island so defs/uses still resolve without crashing.
                cur = self.cfg._new_block()
            cur = self._stmt(stmt, cur)
        return cur

    def _stmt(self, stmt: ast.stmt, cur: int) -> Optional[int]:
        cfg = self.cfg
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg.block(cur).stmts.append(stmt)
            cfg.add_edge(cur, cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            cfg.block(cur).stmts.append(stmt)
            if self.loops:
                cfg.add_edge(cur, self.loops[-1][1])
            else:
                cfg.add_edge(cur, cfg.exit)
            return None
        if isinstance(stmt, ast.Continue):
            cfg.block(cur).stmts.append(stmt)
            if self.loops:
                cfg.add_edge(cur, self.loops[-1][0])
            else:
                cfg.add_edge(cur, cfg.exit)
            return None
        if isinstance(stmt, ast.If):
            cfg.block(cur).stmts.append(stmt)  # the test's use site
            after = cfg._new_block()
            then_entry = cfg._new_block()
            cfg.add_edge(cur, then_entry)
            then_end = self._stmts(stmt.body, then_entry)
            if then_end is not None:
                cfg.add_edge(then_end, after)
            if stmt.orelse:
                else_entry = cfg._new_block()
                cfg.add_edge(cur, else_entry)
                else_end = self._stmts(stmt.orelse, else_entry)
                if else_end is not None:
                    cfg.add_edge(else_end, after)
            else:
                cfg.add_edge(cur, after)
            return after if cfg.block(after).preds else None
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = cfg._new_block()
            cfg.add_edge(cur, header)
            cfg.block(header).stmts.append(stmt)  # test/iter + loop target
            after = cfg._new_block()
            cfg.add_edge(header, after)  # loop never entered / condition false
            body_entry = cfg._new_block()
            cfg.add_edge(header, body_entry)
            self.loops.append((header, after))
            body_end = self._stmts(stmt.body, body_entry)
            self.loops.pop()
            if body_end is not None:
                cfg.add_edge(body_end, header)
            if stmt.orelse:
                else_end = self._stmts(stmt.orelse, after)
                # orelse shares the after block (runs on normal exit).
                return else_end
            return after
        if isinstance(stmt, ast.Try):
            first = len(cfg.blocks)
            body_entry = cfg._new_block()
            cfg.add_edge(cur, body_entry)
            body_end = self._stmts(stmt.body, body_entry)
            body_last = len(cfg.blocks)
            after = cfg._new_block()
            # An exception may fire after any statement of the body:
            # every body-region block gets an edge to every handler.
            handler_entries = []
            for handler in stmt.handlers:
                h_entry = cfg._new_block()
                handler_entries.append(h_entry)
                cfg.block(h_entry).stmts.append(handler)  # name binding
                h_end = self._stmts(handler.body, h_entry)
                if h_end is not None:
                    cfg.add_edge(h_end, after)
            for bid in range(first, body_last):
                for h_entry in handler_entries:
                    cfg.add_edge(bid, h_entry)
            if body_end is not None:
                if stmt.orelse:
                    else_end = self._stmts(stmt.orelse, body_end)
                    if else_end is not None:
                        cfg.add_edge(else_end, after)
                else:
                    cfg.add_edge(body_end, after)
            if stmt.finalbody:
                fin_entry = cfg._new_block()
                cfg.add_edge(after, fin_entry)
                fin_end = self._stmts(stmt.finalbody, fin_entry)
                return fin_end
            return after if cfg.block(after).preds else None
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cfg.block(cur).stmts.append(stmt)  # context exprs + as-bindings
            return self._stmts(stmt.body, cur)
        if isinstance(stmt, ast.Match):
            cfg.block(cur).stmts.append(stmt)  # subject use
            after = cfg._new_block()
            for case in stmt.cases:
                c_entry = cfg._new_block()
                cfg.add_edge(cur, c_entry)
                cfg.block(c_entry).stmts.append(case)  # pattern bindings
                c_end = self._stmts(case.body, c_entry)
                if c_end is not None:
                    cfg.add_edge(c_end, after)
            cfg.add_edge(cur, after)  # no case matched
            return after
        # Plain statement (incl. nested def/class, which merely bind names).
        cfg.block(cur).stmts.append(stmt)
        return cur


def build_cfg(unit: FunctionUnit, name: str = "<unit>") -> CFG:
    return _Builder(unit, name).build()


def iter_function_units(
    tree: ast.Module,
) -> Iterator[Tuple[FunctionUnit, str]]:
    """Yield ``(unit, qualified_name)`` for the module body and every
    (possibly nested) function definition."""
    yield tree, "<module>"

    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[FunctionUnit, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield child, qual
                yield from walk(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")
