"""Dataflow layer for simcheck: CFGs, reaching definitions, taint.

The PR-3 rules are purely syntactic — they look at one AST node at a
time.  This subpackage adds the second analyzer layer: per-function
control-flow graphs (:mod:`cfg`), a reaching-definitions fixed point
with def-use chains (:mod:`reaching`), and a small provenance/taint
framework (:mod:`taint`) that propagates client-defined facts along
those chains.  The FLOW rules (:mod:`repro.simcheck.rules.flow_rules`)
are the first clients; the backend-conformance and table-drift passes
anchor on the same machinery where inference suffices.
"""

from .cfg import CFG, Block, build_cfg, iter_function_units
from .reaching import Definition, ReachingDefinitions
from .taint import TaintAnalysis

__all__ = [
    "CFG",
    "Block",
    "build_cfg",
    "iter_function_units",
    "Definition",
    "ReachingDefinitions",
    "TaintAnalysis",
]
