"""Provenance/taint propagation on top of reaching definitions.

A client supplies a *transfer* function that maps a definition's RHS to
a set of string tags, given an environment of the tags already known
for every variable whose definitions reach that point.  Tags only grow,
so iterating the transfer over all definitions until nothing changes is
a fixed point (the tag domain is a finite powerset for any finite tag
alphabet a client uses).

Clients read results with :meth:`TaintAnalysis.tags_at`, which joins
the tags of every definition reaching a use — i.e. a tag is reported
when it holds on *some* path, matching the CFG's over-approximation.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, Mapping, Optional, Set

from .cfg import CFG
from .reaching import Definition, ReachingDefinitions

#: transfer(definition, env) -> tags; ``env`` maps var name -> joined tags
#: of the definitions reaching the defining statement.
Transfer = Callable[[Definition, Mapping[str, FrozenSet[str]]], FrozenSet[str]]

EMPTY: FrozenSet[str] = frozenset()


class TaintAnalysis:
    """Fixed point of a client transfer function over all definitions."""

    def __init__(
        self,
        cfg: CFG,
        rd: ReachingDefinitions,
        transfer: Transfer,
        seed: Optional[Mapping[str, FrozenSet[str]]] = None,
    ) -> None:
        self.cfg = cfg
        self.rd = rd
        self.transfer = transfer
        #: tags per definition (identity-keyed: Definition is frozen/hashable)
        self.def_tags: Dict[Definition, FrozenSet[str]] = {}
        #: tags assumed for names with no visible definition (free vars,
        #: globals, closure captures) — absent means untainted.
        self.free_tags: Dict[str, FrozenSet[str]] = dict(seed or {})
        self._solve()

    def _env_for(self, d: Definition) -> Dict[str, FrozenSet[str]]:
        """Tags of every variable at the point just before ``d`` executes."""
        env: Dict[str, FrozenSet[str]] = {}
        if d.value is None and not isinstance(d.stmt, ast.AST):
            return env
        names: Set[str] = set()
        for node in ast.walk(d.value if d.value is not None else d.stmt):
            if isinstance(node, ast.Name):
                names.add(node.id)
        for name in sorted(names):
            env[name] = self.tags_before(d.block, d.index, name)
        return env

    def _solve(self) -> None:
        defs = self.rd.all_definitions()
        for d in defs:
            self.def_tags[d] = EMPTY
        changed = True
        while changed:
            changed = False
            for d in defs:
                env = self._env_for(d)
                tags = self.transfer(d, env)
                merged = self.def_tags[d] | tags
                if merged != self.def_tags[d]:
                    self.def_tags[d] = merged
                    changed = True

    # -- queries -------------------------------------------------------
    def tags_before(self, block: int, index: int, var: str) -> FrozenSet[str]:
        """Joined tags of all definitions of ``var`` reaching the point
        just before statement ``index`` of ``block``."""
        reaching = self.rd.defs_at(block, index, var)
        if not reaching:
            return self.free_tags.get(var, EMPTY)
        out: Set[str] = set()
        for d in reaching:
            out |= self.def_tags.get(d, EMPTY)
        return frozenset(out)

    def tags_at(self, name_node: ast.Name, block: int, index: int) -> FrozenSet[str]:
        return self.tags_before(block, index, name_node.id)

    def definitions_with(self, tag: str) -> Set[Definition]:
        return {d for d, tags in self.def_tags.items() if tag in tags}
