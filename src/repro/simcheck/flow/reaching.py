"""Reaching definitions over :mod:`repro.simcheck.flow.cfg` graphs.

The analysis tracks plain-``Name`` bindings only: attribute and
subscript stores mutate objects, not the local namespace, so they are
neither gens nor kills here (the taint layer treats them as uses of the
base name instead).  Compound-statement headers that live in a block
(see ``cfg.py``) contribute only their header parts — an ``ast.If``
stored in a block defines nothing and uses its test; an ``ast.For``
defines its target and uses its iterable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from .cfg import CFG


@dataclass(frozen=True)
class Definition:
    """One binding of ``var`` produced by ``stmt``.

    ``value`` is the expression assigned when one can be isolated (the
    RHS of a simple assignment, the iterable of a ``for``); ``None`` for
    opaque bindings such as ``except ... as e`` or function parameters.
    """

    var: str
    stmt: ast.AST
    block: int
    index: int  # position of stmt within its block
    value: ast.expr = None  # type: ignore[assignment]

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)


def _target_names(target: ast.expr) -> Iterator[str]:
    """Names bound by an assignment target (tuples/lists/stars descend)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    # Attribute / Subscript targets bind no local name.


def _pattern_names(pattern: ast.AST) -> Iterator[str]:
    for node in ast.walk(pattern):
        if isinstance(node, ast.MatchAs) and node.name:
            yield node.name
        elif isinstance(node, ast.MatchStar) and node.name:
            yield node.name
        elif isinstance(node, ast.MatchMapping) and node.rest:
            yield node.rest


def stmt_defs(stmt: ast.AST) -> List[Tuple[str, ast.expr]]:
    """``(name, value_expr_or_None)`` pairs bound by a block statement."""
    out: List[Tuple[str, ast.expr]] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            for name in _target_names(target):
                # Tuple unpack: value is the whole RHS (imprecise but safe).
                out.append((name, stmt.value))
    elif isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name):
            out.append((stmt.target.id, stmt))  # type: ignore[arg-type]
    elif isinstance(stmt, ast.AnnAssign):
        if isinstance(stmt.target, ast.Name) and stmt.value is not None:
            out.append((stmt.target.id, stmt.value))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for name in _target_names(stmt.target):
            out.append((name, stmt.iter))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for name in _target_names(item.optional_vars):
                    out.append((name, item.context_expr))
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            out.append((stmt.name, None))  # type: ignore[arg-type]
    elif isinstance(stmt, ast.Match):
        pass  # bindings live in the match_case pseudo-statements
    elif isinstance(stmt, ast.match_case):
        for name in _pattern_names(stmt.pattern):
            out.append((name, None))  # type: ignore[arg-type]
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        out.append((stmt.name, None))  # type: ignore[arg-type]
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            bound = alias.asname or alias.name.split(".")[0]
            out.append((bound, None))  # type: ignore[arg-type]
    # Walrus operators anywhere inside the statement's header expressions.
    for expr in _header_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
                out.append((node.target.id, node.value))
    return out


def _header_exprs(stmt: ast.AST) -> List[ast.expr]:
    """Expressions evaluated *in the block holding this statement* —
    i.e. excluding bodies of compound statements, which live in other
    blocks, and excluding nested function bodies (separate units)."""
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.match_case):
        return [stmt.guard] if stmt.guard else []
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type else []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return list(stmt.decorator_list) + [
            d for d in stmt.args.defaults + stmt.args.kw_defaults if d
        ]
    if isinstance(stmt, ast.ClassDef):
        return list(stmt.decorator_list) + list(stmt.bases) + [
            kw.value for kw in stmt.keywords
        ]
    # Simple statement: every child expression evaluates here.
    return [node for node in ast.iter_child_nodes(stmt) if isinstance(node, ast.expr)]


def stmt_use_nodes(stmt: ast.AST) -> List[ast.Name]:
    """``ast.Name`` loads evaluated in the block holding ``stmt``."""
    uses: List[ast.Name] = []
    exprs = list(_header_exprs(stmt))
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        # Attribute/Subscript targets *read* their base expression.
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        exprs = ([stmt.value] if stmt.value is not None else [])
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                exprs.append(target)
    elif isinstance(stmt, ast.AugAssign):
        exprs = [stmt.value, stmt.target]  # x += y reads both
    for expr in exprs:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Load, ast.Del)):
                uses.append(node)
            elif isinstance(node, ast.NamedExpr):
                pass  # its target is a store; walk continues into value
    return uses


class ReachingDefinitions:
    """Classic forward may-analysis; exposes def-use resolution."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self._gen: List[Dict[str, Set[Definition]]] = []
        self._kill: List[Set[str]] = []
        self.block_in: List[Dict[str, FrozenSet[Definition]]] = []
        self._params: List[Definition] = []
        self._compute()

    # -- setup ---------------------------------------------------------
    def _seed_params(self) -> Dict[str, Set[Definition]]:
        env: Dict[str, Set[Definition]] = {}
        unit = self.cfg.unit
        if isinstance(unit, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = unit.args
            names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
            if args.vararg:
                names.append(args.vararg.arg)
            if args.kwarg:
                names.append(args.kwarg.arg)
            for name in names:
                d = Definition(var=name, stmt=unit, block=self.cfg.entry, index=0)
                self._params.append(d)
                env[name] = {d}
        return env

    def _compute(self) -> None:
        cfg = self.cfg
        n = len(cfg.blocks)
        self._gen = [dict() for _ in range(n)]
        self._kill = [set() for _ in range(n)]
        for block in cfg.blocks:
            gen = self._gen[block.bid]
            kill = self._kill[block.bid]
            for idx, stmt in enumerate(block.stmts):
                for name, value in stmt_defs(stmt):
                    d = Definition(
                        var=name, stmt=stmt, block=block.bid, index=idx, value=value
                    )
                    gen[name] = {d}  # later def in same block kills earlier
                    kill.add(name)

        entry_env = self._seed_params()
        self._gen[cfg.entry] = {k: set(v) for k, v in entry_env.items()}
        for name in entry_env:
            self._kill[cfg.entry].add(name)

        in_sets: List[Dict[str, Set[Definition]]] = [dict() for _ in range(n)]
        out_sets: List[Dict[str, Set[Definition]]] = [dict() for _ in range(n)]
        work = list(range(n))
        while work:
            bid = work.pop()
            new_in: Dict[str, Set[Definition]] = {}
            for pred in cfg.blocks[bid].preds:
                for name, defs in out_sets[pred].items():
                    new_in.setdefault(name, set()).update(defs)
            in_sets[bid] = new_in
            new_out: Dict[str, Set[Definition]] = {
                name: set(defs)
                for name, defs in new_in.items()
                if name not in self._kill[bid]
            }
            for name, defs in self._gen[bid].items():
                new_out[name] = set(defs)
            if new_out != out_sets[bid]:
                out_sets[bid] = new_out
                work.extend(cfg.blocks[bid].succs)
        self.block_in = [
            {name: frozenset(defs) for name, defs in env.items()} for env in in_sets
        ]

    # -- queries -------------------------------------------------------
    def defs_at(self, block: int, index: int, var: str) -> FrozenSet[Definition]:
        """Definitions of ``var`` reaching statement ``index`` of ``block``."""
        env = dict(self.block_in[block])
        live: Set[Definition] = set(env.get(var, ()))
        for idx, stmt in enumerate(self.cfg.blocks[block].stmts):
            if idx >= index:
                break
            for name, value in stmt_defs(stmt):
                if name == var:
                    live = {
                        Definition(
                            var=name, stmt=stmt, block=block, index=idx, value=value
                        )
                    }
        return frozenset(live)

    def all_definitions(self) -> List[Definition]:
        out: List[Definition] = list(self._params)
        for block in self.cfg.blocks:
            for idx, stmt in enumerate(block.stmts):
                for name, value in stmt_defs(stmt):
                    out.append(
                        Definition(
                            var=name, stmt=stmt, block=block.bid, index=idx, value=value
                        )
                    )
        return out

    def iter_uses(self) -> Iterator[Tuple[ast.Name, int, int, ast.AST]]:
        """Yield ``(name_node, block, index, enclosing_stmt)`` for every
        Name load in the unit."""
        for block in self.cfg.blocks:
            for idx, stmt in enumerate(block.stmts):
                for node in stmt_use_nodes(stmt):
                    yield node, block.bid, idx, stmt
