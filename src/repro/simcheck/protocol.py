"""Static analyzer for declarative coherence protocol tables.

Imports the :data:`TRANSITION_TABLE` objects from
:mod:`repro.coherence.base_protocol` / :mod:`repro.coherence.pipm_protocol`
and checks them *without simulating* — the Murphi-compile-time class of
defect that the runtime :class:`~repro.coherence.checker.ModelChecker`
can only find by stumbling into the bad state:

* ``PROTO001`` exhaustiveness — every ``(state, event)`` pair of every
  role is either handled or explicitly declared illegal;
* ``PROTO002`` determinism — no stimulus maps to two transitions unless
  every entry carries a distinct non-empty guard;
* ``PROTO003`` message closure — every emitted message has a consumer in
  the destination role, and every awaited message has a producer;
* ``PROTO004`` liveness — no static wait-for cycle among blocking
  transitions (A stalls on a message only a stalled B can send);
* ``PROTO005`` structural validity — states/events/roles referenced by a
  row all exist in the role specs.

An info-severity note lists :class:`MessageType` members the table never
references (e.g. the ``NC_RD``/``NC_WR`` GIM path, which is timing-only).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..coherence.messages import MessageType
from ..coherence.table import ProtocolTable, Transition
from .findings import Finding

#: Modules whose presence in a lint run triggers the protocol pass, mapped
#: to import callables so ``lint`` can resolve them lazily.
PROTOCOL_MODULES = (
    "src/repro/coherence/base_protocol.py",
    "src/repro/coherence/pipm_protocol.py",
)


def _table_line(source_path: str) -> int:
    """Line of the ``TRANSITION_TABLE = ...`` assignment, for findings."""
    try:
        with open(source_path, "r", encoding="utf-8") as handle:
            tree = ast.parse(handle.read())
    except (OSError, SyntaxError):
        return 1
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "TRANSITION_TABLE"
                ):
                    return node.lineno
    return 1


class ProtocolAnalyzer:
    """Checks one :class:`ProtocolTable`; findings point at ``path``."""

    def __init__(
        self,
        table: ProtocolTable,
        path: str = "<table>",
        line: int = 1,
    ) -> None:
        self.table = table
        self.path = path
        self.line = line

    def _finding(
        self, rule: str, message: str, severity: str = "error"
    ) -> Finding:
        return Finding(
            rule=rule,
            path=self.path,
            line=self.line,
            message=f"{self.table.name}: {message}",
            severity=severity,
            line_text=f"{self.table.name}::{message}",
        )

    # ------------------------------------------------------------------
    # Individual checks
    # ------------------------------------------------------------------

    def check_structure(self) -> Iterator[Finding]:
        role_names = set(self.table.role_names())
        for row in self.table.transitions:
            role = self.table.role(row.role)
            if role is None:
                yield self._finding(
                    "PROTO005",
                    f"transition {row.label()} names unknown role "
                    f"{row.role!r} (roles: {sorted(role_names)})",
                )
                continue
            if row.state not in role.states:
                yield self._finding(
                    "PROTO005",
                    f"transition {row.label()} starts in {row.state!r}, "
                    f"not a state of role {row.role!r} "
                    f"({list(role.states)})",
                )
            if row.event not in role.events:
                yield self._finding(
                    "PROTO005",
                    f"transition {row.label()} fires on {row.event!r}, "
                    f"not an event of role {row.role!r} "
                    f"({list(role.events)})",
                )
            for nxt in row.next_states:
                if nxt not in role.states:
                    yield self._finding(
                        "PROTO005",
                        f"transition {row.label()} targets {nxt!r}, not a "
                        f"state of role {row.role!r}",
                    )
            for e in row.emits:
                if e.to_role not in role_names:
                    yield self._finding(
                        "PROTO005",
                        f"transition {row.label()} emits {e.msg.name} to "
                        f"unknown role {e.to_role!r}",
                    )
            for w in row.waits:
                for producer in w.from_roles:
                    if producer not in role_names:
                        yield self._finding(
                            "PROTO005",
                            f"transition {row.label()} waits for "
                            f"{w.msg.name} from unknown role "
                            f"{producer!r}",
                        )

    def check_exhaustiveness(self) -> Iterator[Finding]:
        covered = set(self.table.by_stimulus())
        for role in self.table.roles:
            for state in role.states:
                for event in role.events:
                    if (role.name, state, event) not in covered:
                        yield self._finding(
                            "PROTO001",
                            f"({role.name}, {state}, {event}) is neither "
                            f"handled nor declared illegal — the FSM's "
                            f"behaviour for this stimulus is undefined",
                        )

    def check_determinism(self) -> Iterator[Finding]:
        for stimulus, rows in sorted(self.table.by_stimulus().items()):
            if len(rows) < 2:
                continue
            guards = [row.guard for row in rows]
            distinct = len(set(guards)) == len(guards)
            if "" in guards or not distinct:
                role, state, event = stimulus
                yield self._finding(
                    "PROTO002",
                    f"({role}, {state}, {event}) has {len(rows)} "
                    f"transitions with guards {guards!r}; split rules "
                    f"must each carry a distinct non-empty guard",
                )

    def check_closure(self) -> Iterator[Finding]:
        """Every Emit has a consumer; every Wait has a producer."""
        # Receivers: role -> messages it consumes or blocks on.
        receivers: Dict[str, set] = {
            role.name: set() for role in self.table.roles
        }
        for row in self.table.transitions:
            sink = receivers.setdefault(row.role, set())
            sink.update(row.consumes)
            sink.update(w.msg for w in row.waits)
        # Producers: (msg, to_role) pairs some transition emits.
        produced = {
            (e.msg, e.to_role)
            for row in self.table.transitions
            for e in row.emits
        }
        producers_by_role: Dict[str, set] = {}
        for row in self.table.transitions:
            for e in row.emits:
                producers_by_role.setdefault(row.role, set()).add(e.msg)

        for row in self.table.transitions:
            for e in row.emits:
                if e.msg not in receivers.get(e.to_role, set()):
                    yield self._finding(
                        "PROTO003",
                        f"{row.label()} emits {e.msg.name} to "
                        f"{e.to_role!r}, but no {e.to_role} transition "
                        f"consumes or waits for {e.msg.name} — the "
                        f"message is orphaned",
                    )
            for w in row.waits:
                if not any(
                    w.msg in producers_by_role.get(producer, set())
                    and (w.msg, row.role) in produced
                    for producer in w.from_roles
                ):
                    yield self._finding(
                        "PROTO003",
                        f"{row.label()} waits for {w.msg.name} from "
                        f"{list(w.from_roles)}, but no such role emits "
                        f"{w.msg.name} to {row.role!r} — the wait can "
                        f"never be satisfied",
                    )

    def check_wait_cycles(self) -> Iterator[Finding]:
        """No cycle A-waits-on-B-waits-on-...-waits-on-A among blocking
        transitions: a static deadlock the runtime checker only finds if
        its BFS happens to interleave into it."""
        blocking = [row for row in self.table.transitions if row.blocking]
        edges: Dict[int, List[int]] = {i: [] for i in range(len(blocking))}
        for i, waiter in enumerate(blocking):
            for w in waiter.waits:
                for j, producer in enumerate(blocking):
                    if i == j or producer.role not in w.from_roles:
                        continue
                    if any(
                        e.msg == w.msg and e.to_role == waiter.role
                        for e in producer.emits
                    ):
                        edges[i].append(j)

        WHITE, GREY, BLACK = 0, 1, 2
        color = [WHITE] * len(blocking)
        stack: List[int] = []

        def visit(node: int) -> Optional[List[int]]:
            color[node] = GREY
            stack.append(node)
            for succ in edges[node]:
                if color[succ] == GREY:
                    return stack[stack.index(succ):] + [succ]
                if color[succ] == WHITE:
                    cycle = visit(succ)
                    if cycle:
                        return cycle
            stack.pop()
            color[node] = BLACK
            return None

        for start in range(len(blocking)):
            if color[start] != WHITE:
                continue
            cycle = visit(start)
            if cycle:
                chain = " -> ".join(blocking[i].label() for i in cycle)
                yield self._finding(
                    "PROTO004",
                    f"static wait-for cycle among blocking transitions: "
                    f"{chain}; each stalls on a message only another "
                    f"stalled transition can send",
                )
                return

    def check_unused_messages(self) -> Iterator[Finding]:
        used = set(self.table.messages_used())
        unused = [m.name for m in MessageType if m not in used]
        if unused:
            yield self._finding(
                "PROTO006",
                f"MessageType members never referenced by the table: "
                f"{unused} (fine if they belong to a timing-only path, "
                f"e.g. the non-cacheable GIM accesses)",
                severity="info",
            )

    def run(self) -> List[Finding]:
        findings: List[Finding] = []
        findings.extend(self.check_structure())
        # A structurally broken table produces noise from the deeper
        # checks; report only the structural findings in that case.
        if any(f.rule == "PROTO005" for f in findings):
            return findings
        findings.extend(self.check_exhaustiveness())
        findings.extend(self.check_determinism())
        findings.extend(self.check_closure())
        findings.extend(self.check_wait_cycles())
        findings.extend(self.check_unused_messages())
        return findings


def analyze_table(
    table: ProtocolTable, path: str = "<table>", line: int = 1
) -> List[Finding]:
    return ProtocolAnalyzer(table, path=path, line=line).run()


def analyze_repo_tables(
    root: str, relpaths: Optional[Sequence[str]] = None
) -> Tuple[List[Finding], List[str]]:
    """Analyze the repo's real protocol tables.

    ``relpaths`` filters to tables whose defining module is in the set
    (posix-style, repo-relative); ``None`` analyzes all.  Returns
    ``(findings, names_of_tables_checked)``.
    """
    import os

    from ..coherence import base_protocol, pipm_protocol

    wanted = set(relpaths) if relpaths is not None else None
    findings: List[Finding] = []
    checked: List[str] = []
    for relpath, module in (
        (PROTOCOL_MODULES[0], base_protocol),
        (PROTOCOL_MODULES[1], pipm_protocol),
    ):
        if wanted is not None and relpath not in wanted:
            continue
        table = getattr(module, "TRANSITION_TABLE", None)
        if table is None:
            findings.append(
                Finding(
                    rule="PROTO005",
                    path=relpath,
                    line=1,
                    message=f"{relpath} defines no TRANSITION_TABLE",
                    line_text=relpath,
                )
            )
            continue
        line = _table_line(os.path.join(root, relpath))
        findings.extend(analyze_table(table, path=relpath, line=line))
        checked.append(table.name)
    return findings, checked
