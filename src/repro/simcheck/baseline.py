"""Baseline files: grandfather existing findings, fail only on regressions.

The baseline is a committed JSON file mapping finding fingerprints (see
:meth:`repro.simcheck.findings.Finding.fingerprint`) to allowed counts.
``python -m repro lint --write-baseline`` snapshots the current tree;
subsequent runs subtract the baseline, so CI trips only when a *new*
finding appears.  Counts matter: two identical offending lines in one
file share a fingerprint, and fixing one of them must not hide the other.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

from .findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE = "simcheck-baseline.json"

#: Conformance and drift rules assert that the fast path / transition
#: tables agree with the code *right now* — grandfathering one would
#: defeat the whole point, so they can never enter the baseline.
UNBASELINEABLE_PREFIXES = ("VEC",)
UNBASELINEABLE_RULES = frozenset({"PROTO007"})


def baseline_eligible(finding: Finding) -> bool:
    """Whether a finding may be grandfathered (or written) at all."""
    if finding.severity != "error":
        return False
    if finding.rule in UNBASELINEABLE_RULES:
        return False
    return not finding.rule.startswith(UNBASELINEABLE_PREFIXES)


def load_baseline(path: str) -> Dict[str, int]:
    """Fingerprint -> allowed-count map from a baseline file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {payload.get('version')!r}"
        )
    findings = payload.get("findings", {})
    if not isinstance(findings, dict):
        raise ValueError(f"{path}: 'findings' must be a mapping")
    return {str(k): int(v) for k, v in findings.items()}


def write_baseline(path: str, findings: List[Finding]) -> int:
    """Snapshot ``findings`` (errors only) as the new baseline."""
    counts: Dict[str, int] = {}
    for finding in findings:
        if not baseline_eligible(finding):
            continue
        key = finding.fingerprint()
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Grandfathered simcheck findings. Regenerate with "
            "`python -m repro lint --write-baseline`; shrink it by fixing "
            "findings, never grow it by hand."
        ),
        "findings": dict(sorted(counts.items())),
    }
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    os.replace(tmp, path)
    return len(counts)


def prune_baseline(path: str, root: str) -> Tuple[int, int]:
    """Drop fingerprints whose file no longer exists; rewrite in place.

    Returns ``(kept, dropped)`` entry counts.  Also sheds malformed
    fingerprints and entries for unbaselineable rules (hand-edits or
    leftovers from older tool versions) — none of those can ever be
    consumed by :func:`apply_baseline` again, so they are pure noise.
    """
    counts = load_baseline(path)
    kept: Dict[str, int] = {}
    dropped = 0
    for key, count in counts.items():
        parts = key.split("::")
        if len(parts) < 3:
            dropped += 1
            continue
        rule = parts[0]
        relpath = "::".join(parts[1:-1])
        if rule in UNBASELINEABLE_RULES or rule.startswith(
            UNBASELINEABLE_PREFIXES
        ):
            dropped += 1
            continue
        if not os.path.isfile(os.path.join(root, relpath)):
            dropped += 1
            continue
        kept[key] = count
    if dropped:
        payload = {
            "version": BASELINE_VERSION,
            "comment": (
                "Grandfathered simcheck findings. Regenerate with "
                "`python -m repro lint --write-baseline`; shrink it by "
                "fixing findings, never grow it by hand."
            ),
            "findings": dict(sorted(kept.items())),
        }
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        os.replace(tmp, path)
    return len(kept), dropped


def apply_baseline(
    findings: List[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, grandfathered-count).

    Only ``error`` findings are baseline-eligible; notes always pass
    through (they never fail the run anyway).  Conformance/drift rules
    (:data:`UNBASELINEABLE_PREFIXES`, :data:`UNBASELINEABLE_RULES`) are
    never matched against the baseline even if someone hand-edited an
    entry in.
    """
    budget = dict(baseline)
    fresh: List[Finding] = []
    grandfathered = 0
    for finding in findings:
        if baseline_eligible(finding):
            key = finding.fingerprint()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                grandfathered += 1
                continue
        fresh.append(finding)
    return fresh, grandfathered
