"""Mutable-default rules for dataclass fields and function signatures.

A mutable default is shared by every instance/call; in simulator code
that typically means cross-run state leaking through a config object —
another way a run stops being a pure function of its spec.  The runtime
only catches the ``list``/``dict``/``set`` literals in dataclasses (and
only on instantiation); this rule also catches constructor calls like
``= defaultdict(list)`` and plain function defaults, at lint time.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..engine import FileContext, Rule, register
from ..findings import Finding
from .common import unparse

_MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
}


def _mutable_default(node: Optional[ast.AST]) -> Optional[str]:
    """A short description if ``node`` is a mutable default, else None."""
    if node is None:
        return None
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return unparse(node)
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name in _MUTABLE_CONSTRUCTORS:
            return unparse(node)
    return None


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else ""
        )
        if name == "dataclass":
            return True
    return False


@register
class MutableDefaultRule(Rule):
    id = "MUT001"
    title = "mutable default (dataclass field or function argument)"
    scopes = ("src", "benchmarks", "tests")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                for stmt in node.body:
                    if not isinstance(stmt, ast.AnnAssign):
                        continue
                    described = _mutable_default(stmt.value)
                    if described:
                        name = unparse(stmt.target)
                        yield ctx.finding(
                            self.id,
                            stmt,
                            f"dataclass field {name} defaults to mutable "
                            f"{described}; use "
                            f"field(default_factory=...)",
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    described = _mutable_default(default)
                    if described:
                        yield ctx.finding(
                            self.id,
                            default,
                            f"function {node.name}() has mutable default "
                            f"{described}, shared across calls; default "
                            f"to None and construct inside",
                        )
