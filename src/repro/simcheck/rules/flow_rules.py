"""Dataflow rules: RNG provenance and latency-unit taint.

These are the first clients of :mod:`repro.simcheck.flow`.  Unlike the
DET/UNIT pattern rules they reason over def-use chains, so an unseeded
RNG is flagged where it is *used* (after flowing through any number of
aliases and branch joins), and a nanosecond-valued variable is flagged
where it *mixes* with an event counter, not only at literal sites.

FLOW001 — an RNG object whose provenance includes an unseeded
    constructor (``random.Random()``, ``numpy.random.default_rng()``,
    ``numpy.random.RandomState()``) reaches a draw or escapes into a
    call.  A later ``obj.seed(...)`` call anywhere in the same function
    sanitizes the variable (flow-insensitively — the goal is catching
    RNGs that are *never* seeded, not seeding-order races).

FLOW002 — a value tainted nanosecond (read from an ``*_ns`` name)
    is added to / subtracted from a value tainted event-count
    (grown by integer-literal ``+=`` increments).  Multiplication is
    scaling and stays nanoseconds; only additive mixing is a bug.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Mapping, Set, Tuple

from ..engine import FileContext, Rule, register
from ..findings import Finding
from ..flow import CFG, ReachingDefinitions, TaintAnalysis, build_cfg, iter_function_units
from ..flow.reaching import Definition, stmt_defs
from .common import ImportMap, call_name
from .determinism import SEEDABLE_FACTORIES

EMPTY: FrozenSet[str] = frozenset()

_UNSEEDED_PREFIX = "rng:unseeded@"
_SEEDED = "rng:seeded"

_NS = "unit:ns"
_COUNT = "unit:count"


def _unit_analyses(ctx: FileContext) -> List[Tuple[CFG, ReachingDefinitions]]:
    """CFG + reaching-defs per function unit, cached on the parsed tree
    so FLOW001 and FLOW002 share one construction pass."""
    cached = getattr(ctx.tree, "_simcheck_flow_units", None)
    if cached is not None:
        return cached
    units: List[Tuple[CFG, ReachingDefinitions]] = []
    for unit, name in iter_function_units(ctx.tree):
        cfg = build_cfg(unit, name)
        units.append((cfg, ReachingDefinitions(cfg)))
    ctx.tree._simcheck_flow_units = units  # type: ignore[attr-defined]
    return units


def _parents(stmt: ast.AST) -> Dict[ast.AST, ast.AST]:
    out: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(stmt):
        for child in ast.iter_child_nodes(parent):
            out[child] = parent
    return out


def _is_seeded_call(call: ast.Call) -> bool:
    # Same convention DET002 checks syntactically.
    return bool(call.args) or any(
        kw.arg in (None, "seed", "x") for kw in call.keywords
    )


@register
class RngProvenanceRule(Rule):
    id = "FLOW001"
    title = "unseeded RNG provenance reaches a use"
    scopes = ("src", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)

        def transfer(
            d: Definition, env: Mapping[str, FrozenSet[str]]
        ) -> FrozenSet[str]:
            value = d.value
            if isinstance(value, ast.Call):
                name = call_name(imports, value)
                if name in SEEDABLE_FACTORIES:
                    if _is_seeded_call(value):
                        return frozenset({_SEEDED})
                    return frozenset({f"{_UNSEEDED_PREFIX}{value.lineno}"})
                return EMPTY
            if isinstance(value, ast.Name):
                return env.get(value.id, EMPTY)
            if isinstance(value, ast.IfExp):
                tags: Set[str] = set()
                for arm in (value.body, value.orelse):
                    if isinstance(arm, ast.Name):
                        tags |= env.get(arm.id, EMPTY)
                return frozenset(tags)
            return EMPTY

        for cfg, rd in _unit_analyses(ctx):
            ta = TaintAnalysis(cfg, rd, transfer)
            if not any(
                tags for tags in ta.def_tags.values()
                if any(t.startswith(_UNSEEDED_PREFIX) for t in sorted(tags))
            ):
                continue

            # Sanitizer: a var.seed(...) call anywhere in the unit means
            # the RNG *is* seeded, just not at construction.
            sanitized: Set[str] = set()
            for node in ast.walk(cfg.unit):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "seed"
                    and isinstance(node.func.value, ast.Name)
                    and (node.args or node.keywords)
                ):
                    sanitized.add(node.func.value.id)

            reported: Set[Tuple[int, str]] = set()
            for name_node, blk, idx, stmt in rd.iter_uses():
                if name_node.id in sanitized:
                    continue
                tags = ta.tags_at(name_node, blk, idx)
                origins = sorted(
                    int(t[len(_UNSEEDED_PREFIX):])
                    for t in sorted(tags)
                    if t.startswith(_UNSEEDED_PREFIX)
                )
                if not origins:
                    continue
                parents = _parents(stmt)
                if not self._is_escaping_use(name_node, parents):
                    continue
                key = (name_node.lineno, name_node.id)
                if key in reported:
                    continue
                reported.add(key)
                where = ", ".join(f"line {ln}" for ln in origins)
                yield ctx.finding(
                    self.id,
                    name_node,
                    f"'{name_node.id}' may flow from an RNG constructed "
                    f"without a seed ({where}); every draw reaching "
                    f"simulation state must come from a seeded constructor",
                )

    @staticmethod
    def _is_escaping_use(name_node: ast.Name, parents: Dict[ast.AST, ast.AST]) -> bool:
        """True when the RNG is drawn from (``r.random()``) or handed to
        another callable/container — i.e. entropy can escape.  Pure
        aliasing assignments are the taint's job, not a report site."""
        parent = parents.get(name_node)
        if isinstance(parent, ast.Attribute):
            grand = parents.get(parent)
            if isinstance(grand, ast.Call) and grand.func is parent:
                return parent.attr != "seed"
            return True  # attribute read of RNG state
        if isinstance(parent, ast.Call):
            return name_node in parent.args
        if isinstance(parent, ast.keyword):
            return True
        if isinstance(parent, (ast.Tuple, ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(parent, ast.Return):
            return True
        return False


def _terminal_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


class _UnitTags:
    """Expression-level unit evaluation shared by the FLOW002 transfer
    function and its use-site check."""

    def __init__(self, lookup) -> None:
        self.lookup = lookup  # name -> FrozenSet[str]

    def of(self, node: ast.expr) -> FrozenSet[str]:
        if isinstance(node, ast.Name):
            tags = set(self.lookup(node.id))
            if node.id.endswith("_ns"):
                tags.add(_NS)
            return frozenset(tags)
        if isinstance(node, ast.Attribute):
            return frozenset({_NS}) if node.attr.endswith("_ns") else EMPTY
        if isinstance(node, ast.BinOp):
            left, right = self.of(node.left), self.of(node.right)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                return left | right
            if isinstance(node.op, (ast.Mult, ast.Div, ast.FloorDiv)):
                # Scaling: ns * factor stays ns; ns / ns cancels but
                # claiming EMPTY there would hide real mixes — keep ns.
                if _NS in left or _NS in right:
                    return frozenset({_NS})
                return EMPTY
            return EMPTY
        if isinstance(node, ast.UnaryOp):
            return self.of(node.operand)
        if isinstance(node, ast.IfExp):
            return self.of(node.body) | self.of(node.orelse)
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            if name in ("max", "min") or name.endswith("_ns"):
                tags: Set[str] = set()
                for arg in node.args:
                    tags |= self.of(arg)
                return frozenset(tags)
            return EMPTY
        return EMPTY


def _is_int_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, int) and not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp):
        return _is_int_literal(node.operand)
    return False


@register
class LatencyUnitTaintRule(Rule):
    id = "FLOW002"
    title = "nanosecond value mixed additively with event counter"
    scopes = ("src", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cfg, rd in _unit_analyses(ctx):
            def transfer(
                d: Definition, env: Mapping[str, FrozenSet[str]]
            ) -> FrozenSet[str]:
                evaluator = _UnitTags(lambda n: env.get(n, EMPTY))
                if isinstance(d.stmt, ast.AugAssign) and d.value is d.stmt:
                    aug = d.stmt
                    tags = set(env.get(d.var, EMPTY))
                    if isinstance(aug.op, ast.Add) and _is_int_literal(aug.value):
                        if not d.var.endswith("_ns"):
                            tags.add(_COUNT)
                    else:
                        tags |= evaluator.of(aug.value)
                    return frozenset(tags)
                if d.value is not None and isinstance(d.value, ast.expr):
                    return evaluator.of(d.value)
                return EMPTY

            ta = TaintAnalysis(cfg, rd, transfer)
            if not ta.definitions_with(_COUNT):
                continue  # no counters in this unit — nothing can mix

            reported: Set[int] = set()
            for block in cfg.blocks:
                for idx, stmt in enumerate(block.stmts):
                    evaluator = _UnitTags(
                        lambda n, b=block.bid, i=idx: ta.tags_before(b, i, n)
                    )
                    for finding in self._check_stmt(
                        ctx, stmt, evaluator, reported
                    ):
                        yield finding

    def _check_stmt(
        self,
        ctx: FileContext,
        stmt: ast.AST,
        evaluator: _UnitTags,
        reported: Set[int],
    ) -> Iterator[Finding]:
        sites: List[Tuple[ast.AST, FrozenSet[str], FrozenSet[str]]] = []
        if isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.op, (ast.Add, ast.Sub)
        ):
            if not _is_int_literal(stmt.value):
                sites.append(
                    (stmt, evaluator.of(stmt.target), evaluator.of(stmt.value))
                )
        from ..flow.reaching import _header_exprs

        for expr in _header_exprs(stmt):
            for node in ast.walk(expr):
                if isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Add, ast.Sub)
                ):
                    sites.append(
                        (node, evaluator.of(node.left), evaluator.of(node.right))
                    )
        for node, left, right in sites:
            ns_only_l = _NS in left and _COUNT not in left
            ns_only_r = _NS in right and _COUNT not in right
            cnt_only_l = _COUNT in left and _NS not in left
            cnt_only_r = _COUNT in right and _NS not in right
            if (ns_only_l and cnt_only_r) or (cnt_only_l and ns_only_r):
                line = getattr(node, "lineno", 0)
                if line in reported:
                    continue
                reported.add(line)
                yield ctx.finding(
                    self.id,
                    node,
                    "nanosecond-valued expression added to an event "
                    "counter; latencies and counts live in different "
                    "units — convert or rename before mixing",
                )
