"""Unit-safety heuristics: raw numbers where units.py constants belong.

Scoped to the files where unit mistakes actually corrupt physics —
``config.py`` (every knob the sweeps vary) and the ``mem/`` timing layer.
Two patterns:

* ``UNIT001`` — a bare multiple of 1024 assigned to a ``*_bytes``-style
  name (``8192`` where ``8 * KB`` was meant); misreading one of these
  silently rescales every capacity-derived result.
* ``UNIT002`` — the architectural magic numbers 64/4096 (and shift
  twins 6/12) used in arithmetic instead of ``units.CACHE_LINE`` /
  ``units.PAGE_SIZE`` (/ ``LINE_SHIFT`` / ``PAGE_SHIFT``), which must
  stay consistent repo-wide for address math to agree across layers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Rule, register
from ..findings import Finding

_BYTE_SUFFIXES = ("_bytes", "_size", "_capacity")
_GEOMETRY_CONSTANTS = {64: "units.CACHE_LINE", 4096: "units.PAGE_SIZE"}
_SHIFT_CONSTANTS = {6: "units.LINE_SHIFT", 12: "units.PAGE_SHIFT"}

#: units.py constant names; ``64 * KB`` is sixty-four kilobytes, not a
#: cache-line count, so a unit constant on the other side clears the flag.
_UNIT_NAMES = {
    "NS", "US", "MS", "S", "B", "KB", "MB", "GB",
    "CACHE_LINE", "PAGE_SIZE", "LINES_PER_PAGE",
    "LINE_SHIFT", "PAGE_SHIFT",
}


def _is_unit_reference(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _UNIT_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _UNIT_NAMES
    return False


def _byteish_name(name: str) -> bool:
    return name.endswith(_BYTE_SUFFIXES)


def _offending_byte_literals(value: ast.AST) -> Iterator[ast.Constant]:
    for node in ast.walk(value):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, int)
            and not isinstance(node.value, bool)
            and node.value >= 1024
            and node.value % 1024 == 0
        ):
            yield node


class _UnitScopedRule(Rule):
    scopes = ("src", "benchmarks")

    def applies_to(self, ctx: FileContext) -> bool:
        rel = ctx.relpath
        return rel.endswith("/config.py") or rel == "config.py" or (
            "/mem/" in rel or rel.startswith("mem/")
        )


@register
class ByteLiteralRule(_UnitScopedRule):
    id = "UNIT001"
    title = "raw byte count instead of units.KB/MB/GB"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        def check_value(name: str, value: ast.AST) -> Iterator[Finding]:
            if not _byteish_name(name) or value is None:
                return
            for constant in _offending_byte_literals(value):
                yield ctx.finding(
                    self.id,
                    constant,
                    f"{name} = {constant.value}: spell byte sizes with "
                    f"units constants (e.g. "
                    f"{constant.value // 1024} * units.KB)",
                )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                yield from check_value(node.target.id, node.value)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        yield from check_value(target.id, node.value)
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg:
                        yield from check_value(keyword.arg, keyword.value)


@register
class GeometryLiteralRule(_UnitScopedRule):
    id = "UNIT002"
    title = "magic cache-line/page constant instead of units.*"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if isinstance(node.op, (ast.Mult, ast.FloorDiv, ast.Div, ast.Mod)):
                table = _GEOMETRY_CONSTANTS
            elif isinstance(node.op, (ast.LShift, ast.RShift)):
                table = _SHIFT_CONSTANTS
            else:
                continue
            for side, other in (
                (node.left, node.right), (node.right, node.left),
            ):
                if _is_unit_reference(other):
                    continue
                if (
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, int)
                    and not isinstance(side.value, bool)
                    and side.value in table
                ):
                    yield ctx.finding(
                        self.id,
                        side,
                        f"magic number {side.value} in address/size "
                        f"arithmetic; use {table[side.value]} so geometry "
                        f"stays consistent across layers",
                    )
