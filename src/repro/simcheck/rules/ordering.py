"""Ordering rule: no iteration over unordered sets in result paths.

Set iteration order depends on insertion history and (for strings) the
per-process hash seed, so any statistic, trace, or table built by walking
a set can differ between two runs of the *same* ExperimentSpec — exactly
the nondeterminism the content-addressed bench cache cannot tolerate.
Order-insensitive consumers (``len``/``sum``/``min``/``max``/``any``/
``all``/``sorted``/set algebra) are fine and not flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from ..engine import FileContext, Rule, register
from ..findings import Finding
from .common import unparse

#: Builtins whose output order mirrors the unordered input order.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "reversed", "iter"}


def _is_set_literalish(node: ast.AST) -> bool:
    """Expressions that are unambiguously sets at this very site."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra stays a set: s | t, s & t, s - t, s ^ t.
        return _is_set_literalish(node.left) or _is_set_literalish(node.right)
    return False


def _annotation_is_set(node: ast.AST) -> bool:
    text = unparse(node)
    head = text.split("[", 1)[0].strip()
    return head in ("set", "Set", "frozenset", "FrozenSet",
                    "typing.Set", "typing.FrozenSet")


class _SetVarTracker:
    """Last-assignment-wins map of names/attributes known to hold sets."""

    def __init__(self, tree: ast.AST) -> None:
        assigns: List[Tuple[int, str, bool]] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                is_set = _is_set_literalish(node.value)
                for target in node.targets:
                    name = self._target_name(target)
                    if name:
                        assigns.append((node.lineno, name, is_set))
            elif isinstance(node, ast.AnnAssign):
                name = self._target_name(node.target)
                if not name:
                    continue
                is_set = _annotation_is_set(node.annotation) or (
                    node.value is not None
                    and _is_set_literalish(node.value)
                )
                assigns.append((node.lineno, name, is_set))
        self.known: Dict[str, bool] = {}
        for _, name, is_set in sorted(assigns, key=lambda item: item[0]):
            self.known[name] = is_set

    @staticmethod
    def _target_name(node: ast.AST) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            return f"{node.value.id}.{node.attr}"
        return ""

    def is_set(self, node: ast.AST) -> bool:
        name = self._target_name(node)
        return bool(name) and self.known.get(name, False)


@register
class SetIterationRule(Rule):
    id = "ORD001"
    title = "iteration over an unordered set"
    scopes = ("src", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        tracker = _SetVarTracker(ctx.tree)

        def flag(node: ast.AST, expr: ast.AST) -> Finding:
            return ctx.finding(
                self.id,
                node,
                f"iterating over unordered set {unparse(expr)!r}; wrap "
                f"in sorted(...) so results do not depend on hash order",
            )

        def is_unordered(expr: ast.AST) -> bool:
            return _is_set_literalish(expr) or tracker.is_set(expr)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and is_unordered(node.iter):
                yield flag(node, node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                for gen in node.generators:
                    if is_unordered(gen.iter):
                        yield flag(node, gen.iter)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_SENSITIVE_CALLS
                    and len(node.args) >= 1
                    and is_unordered(node.args[0])
                ):
                    yield flag(node, node.args[0])
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and node.args
                    and is_unordered(node.args[0])
                ):
                    yield flag(node, node.args[0])
