"""StatRegistry discipline: counters accumulate, gauges overwrite.

:meth:`repro.stats.StatRegistry.merge` aggregates per-worker snapshots by
*summing* counter keys and *overwriting* gauge keys.  A key written with
both ``add`` (counter) and ``put`` (gauge) flips between the two sets at
runtime, so a parallel sweep either multiplies a rate by the worker count
or drops accumulated events — silently.  Two statically catchable shapes:

* ``STAT001`` — the same string key used with both ``.add(...)`` and
  ``.put(...)`` on the same receiver in one module;
* ``STAT002`` — a read-modify-write ``.put(k, ....get(k...) + ...)``,
  i.e. a counter implemented with gauge semantics (lost on merge).
* ``STAT003`` — a string-key ``.add(...)`` in a module that also binds
  preresolved counter cells via ``.counter(...)``.  The PR 5 migration
  moved hot-loop accounting onto cells (``cell.value += x``); a stray
  string-key ``add`` in such a module is almost always a forked code
  path (fault path vs. fast path) that re-resolves the key per event —
  and, guarded by ``if stats is not None``, silently diverges from the
  cell path when no registry is attached.  Route the write through the
  already-bound cell instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from ..engine import FileContext, Rule, register
from ..findings import Finding
from .common import unparse


def _registry_calls(
    tree: ast.AST,
) -> Iterator[Tuple[str, str, str, ast.Call]]:
    """Yield (op, receiver_text, key_literal, call) for add/put calls."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in (
            "add", "put",
        ):
            continue
        if not node.args:
            continue
        key = node.args[0]
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            continue
        yield func.attr, unparse(func.value), key.value, node


@register
class MixedStatKindRule(Rule):
    id = "STAT001"
    title = "stat key used as both counter and gauge"
    scopes = ("src", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        ops: Dict[Tuple[str, str], Dict[str, List[ast.Call]]] = {}
        for op, receiver, key, call in _registry_calls(ctx.tree):
            ops.setdefault((receiver, key), {}).setdefault(op, []).append(call)
        for (receiver, key), by_op in sorted(ops.items()):
            if "add" in by_op and "put" in by_op:
                call = max(
                    by_op["add"] + by_op["put"], key=lambda c: c.lineno
                )
                yield ctx.finding(
                    self.id,
                    call,
                    f"{receiver}: key {key!r} is written with both add() "
                    f"(counter) and put() (gauge); merge() semantics "
                    f"differ, pick one",
                )


def _counter_bind_receivers(tree: ast.AST) -> set:
    """Receivers that preresolve cells via ``.counter("key")`` calls."""
    receivers = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "counter"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            receivers.add(unparse(node.func.value))
    return receivers


@register
class StringKeyAddBypassesCellsRule(Rule):
    id = "STAT003"
    title = "string-key add() in a module with preresolved counter cells"
    scopes = ("src", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        bind_receivers = _counter_bind_receivers(ctx.tree)
        if not bind_receivers:
            return
        for op, receiver, key, call in _registry_calls(ctx.tree):
            if op != "add":
                continue
            # Only registry-shaped receivers: the exact receivers that
            # bind cells, or anything stats-named.  Keeps ``set.add`` and
            # friends out of scope.
            if receiver not in bind_receivers and "stats" not in receiver.lower():
                continue
            yield ctx.finding(
                self.id,
                call,
                f"{receiver}: string-key add({key!r}) in a module that "
                f"preresolves counter cells via counter(); per-event "
                f"key lookups fork the accounting path (and a "
                f"None-registry guard drops the events) — bump the "
                f"bound cell instead",
            )


@register
class GaugeAsCounterRule(Rule):
    id = "STAT002"
    title = "counter implemented via put(get()+delta)"
    scopes = ("src", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for op, receiver, key, call in _registry_calls(ctx.tree):
            if op != "put" or len(call.args) < 2:
                continue
            value = call.args[1]
            if not isinstance(value, ast.BinOp) or not isinstance(
                value.op, (ast.Add, ast.Sub)
            ):
                continue
            for inner in ast.walk(value):
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr == "get"
                    and inner.args
                    and isinstance(inner.args[0], ast.Constant)
                    and inner.args[0].value == key
                ):
                    yield ctx.finding(
                        self.id,
                        call,
                        f"{receiver}: put({key!r}, ...get({key!r}) ± δ) "
                        f"is a counter with gauge semantics — worker "
                        f"merges will drop accumulated events; use "
                        f"add({key!r}, δ)",
                    )
                    break
