"""Rule modules; importing this package populates the engine registry."""

from . import consistency  # noqa: F401
from . import determinism  # noqa: F401
from . import ordering  # noqa: F401
from . import unit_safety  # noqa: F401
from . import stats_discipline  # noqa: F401
from . import mutables  # noqa: F401
from . import robustness  # noqa: F401
from . import flow_rules  # noqa: F401
