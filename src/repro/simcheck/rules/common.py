"""Shared AST helpers for the rule modules."""

from __future__ import annotations

import ast
from typing import Dict, Optional


class ImportMap:
    """Resolve names/attribute chains in one module to dotted paths.

    Tracks ``import numpy as np`` (alias -> module) and ``from x import
    y [as z]`` (name -> ``x.y``), so a call like ``np.random.default_rng()``
    resolves to ``numpy.random.default_rng`` and ``default_rng()`` (after a
    ``from numpy.random import default_rng``) resolves identically.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        first = alias.name.split(".")[0]
                        self.aliases[first] = first
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path of a Name/Attribute chain, or None."""
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))


def call_name(imports: ImportMap, call: ast.Call) -> Optional[str]:
    return imports.resolve(call.func)


def unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - very old py or exotic node
        return "<expr>"
