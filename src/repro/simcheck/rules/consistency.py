"""Consistency rules: conditionals whose branches cannot differ.

``X if cond else X`` type-checks, runs, and silently ignores its
condition — exactly the shape of the owner-drop bug this rule was written
after (``entry.state = _S if entry.sharers else _S`` in
``_handle_llc_eviction`` always kept the directory entry Shared).  A
ternary with identical branches is either a typo'd constant or dead
logic; both deserve a finding, not a review-time squint.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Rule, register
from ..findings import Finding
from .common import unparse


@register
class IdenticalTernaryBranchesRule(Rule):
    id = "CON001"
    title = "ternary with identical branches"
    scopes = ("src", "benchmarks", "tests")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.IfExp):
                continue
            if ast.dump(node.body) != ast.dump(node.orelse):
                continue
            branch = unparse(node.body)
            yield ctx.finding(
                self.id,
                node,
                f"'{branch} if ... else {branch}' yields the same value "
                f"on both branches; the condition is dead — one branch "
                f"is probably a typo'd name or constant",
            )
