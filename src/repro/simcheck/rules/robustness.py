"""Robustness rules: no silently swallowed exceptions.

The resilience layer's whole premise is that failures become *structured
records* (FailedRun, journal entries, fault counters) rather than
vanishing.  An ``except Exception: pass`` in simulator code undoes that:
a worker crash, a torn cache file, or a corrupted table read turns into
silently wrong results.  ROB001 flags the two swallowing shapes:

* a bare ``except:`` whose body never re-raises — it also eats
  ``KeyboardInterrupt``/``SystemExit``, so a Ctrl-C'd sweep can hang;
* ``except Exception`` / ``except BaseException`` (alone or in a tuple)
  whose body is *only* ``pass``/``...`` — the failure leaves no trace.

Narrow handlers (``except OSError: pass`` around best-effort cleanup)
are deliberately not flagged: swallowing a *specific* expected error is
a decision; swallowing *everything* is a bug magnet.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Rule, register
from ..findings import Finding

#: Catch-all exception names whose silent swallowing ROB001 flags.
_BROAD = {"Exception", "BaseException"}


def _exception_names(handler: ast.ExceptHandler):
    """The exception names a handler catches (empty for a bare except)."""
    node = handler.type
    if node is None:
        return []
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for elt in elts:
        if isinstance(elt, ast.Name):
            names.append(elt.id)
        elif isinstance(elt, ast.Attribute):
            names.append(elt.attr)
        else:
            names.append("")
    return names


def _body_is_noop(body) -> bool:
    """True when the handler body does nothing observable."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue  # a bare ``...`` or docstring-style constant
        return False
    return True


def _body_reraises(body) -> bool:
    """True when any statement in the handler (re-)raises."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
    return False


@register
class SwallowedExceptionRule(Rule):
    id = "ROB001"
    title = "silently swallowed broad exception"
    scopes = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _exception_names(node)
            if not names:  # bare ``except:``
                if not _body_reraises(node.body):
                    yield ctx.finding(
                        self.id,
                        node,
                        "bare 'except:' without re-raise also swallows "
                        "KeyboardInterrupt/SystemExit; catch the specific "
                        "exception, or record the failure and re-raise",
                    )
                continue
            broad = sorted(set(names) & _BROAD)
            if broad and _body_is_noop(node.body):
                yield ctx.finding(
                    self.id,
                    node,
                    f"'except {broad[0]}: pass' makes the failure "
                    f"disappear; catch the specific exception or turn it "
                    f"into a structured record (FailedRun, journal entry, "
                    f"fault counter)",
                )
