"""Robustness rules: no swallowed exceptions, no unbounded waits.

The resilience layer's whole premise is that failures become *structured
records* (FailedRun, journal entries, fault counters) rather than
vanishing.  An ``except Exception: pass`` in simulator code undoes that:
a worker crash, a torn cache file, or a corrupted table read turns into
silently wrong results.  ROB001 flags the two swallowing shapes:

* a bare ``except:`` whose body never re-raises — it also eats
  ``KeyboardInterrupt``/``SystemExit``, so a Ctrl-C'd sweep can hang;
* ``except Exception`` / ``except BaseException`` (alone or in a tuple)
  whose body is *only* ``pass``/``...`` — the failure leaves no trace.

Narrow handlers (``except OSError: pass`` around best-effort cleanup)
are deliberately not flagged: swallowing a *specific* expected error is
a decision; swallowing *everything* is a bug magnet.

ROB002 guards the other hang family the serve/supervisor layer must
never reintroduce: a retry/poll loop that sleeps forever.  A
``while True:`` (or any constant-true test) whose body calls ``sleep``
but contains no ``break``/``return``/``raise`` has no attempt bound and
no deadline — a wedged dependency turns the process into a zombie that
supervision cannot distinguish from slow progress.  Bound the wait with
an attempt budget, a deadline, or an exit condition.

ROB003 closes the remaining gap between the two: the *unbounded retry*.
A constant-true loop whose exception handler swallows the failure and
retries unconditionally (a top-level ``continue``, or a no-op body that
falls through to the next iteration) never gives up — a persistently
failing dependency spins forever, burning CPU and hiding the root cause.
A ``continue`` nested under an ``if`` counts as an attempt bound (the
sweep runner's ``if attempt <= retries: continue`` idiom); so does a
handler that re-raises, breaks, or returns.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Rule, register
from ..findings import Finding
from .common import ImportMap, call_name

#: Blocking-wait calls that make a constant-true loop an unbounded wait.
_SLEEP_FNS = {"time.sleep"}

#: Catch-all exception names whose silent swallowing ROB001 flags.
_BROAD = {"Exception", "BaseException"}


def _exception_names(handler: ast.ExceptHandler):
    """The exception names a handler catches (empty for a bare except)."""
    node = handler.type
    if node is None:
        return []
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for elt in elts:
        if isinstance(elt, ast.Name):
            names.append(elt.id)
        elif isinstance(elt, ast.Attribute):
            names.append(elt.attr)
        else:
            names.append("")
    return names


def _body_is_noop(body) -> bool:
    """True when the handler body does nothing observable."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue  # a bare ``...`` or docstring-style constant
        return False
    return True


def _body_reraises(body) -> bool:
    """True when any statement in the handler (re-)raises."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
    return False


@register
class SwallowedExceptionRule(Rule):
    id = "ROB001"
    title = "silently swallowed broad exception"
    scopes = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _exception_names(node)
            if not names:  # bare ``except:``
                if not _body_reraises(node.body):
                    yield ctx.finding(
                        self.id,
                        node,
                        "bare 'except:' without re-raise also swallows "
                        "KeyboardInterrupt/SystemExit; catch the specific "
                        "exception, or record the failure and re-raise",
                    )
                continue
            broad = sorted(set(names) & _BROAD)
            if broad and _body_is_noop(node.body):
                yield ctx.finding(
                    self.id,
                    node,
                    f"'except {broad[0]}: pass' makes the failure "
                    f"disappear; catch the specific exception or turn it "
                    f"into a structured record (FailedRun, journal entry, "
                    f"fault counter)",
                )


def _constant_true(test: ast.AST) -> bool:
    """True for ``while True:`` / ``while 1:`` style tests."""
    return isinstance(test, ast.Constant) and bool(test.value)


def _loop_statements(body):
    """Statements inside a loop body, excluding nested function scopes."""
    stack = list(body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)


@register
class UnboundedSleepLoopRule(Rule):
    id = "ROB002"
    title = "sleep loop with no attempt bound or deadline"
    scopes = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            if not _constant_true(node.test):
                continue  # a real condition is itself an exit path
            sleeps = False
            exits = False
            for stmt in _loop_statements(node.body):
                if isinstance(stmt, (ast.Break, ast.Return, ast.Raise)):
                    exits = True
                    break
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call) and (
                        call_name(imports, sub) in _SLEEP_FNS
                    ):
                        sleeps = True
            if sleeps and not exits:
                yield ctx.finding(
                    self.id,
                    node,
                    "'while True' loop sleeps with no break/return/raise: "
                    "an unbounded wait that supervision cannot tell from "
                    "progress; bound it with an attempt budget or "
                    "deadline",
                )


def _own_loop_statements(body):
    """Statements whose nearest enclosing loop is the one passed in.

    Unlike :func:`_loop_statements` this also stops at nested loops: a
    ``continue`` inside an inner ``for``/``while`` retries *that* loop,
    not the outer one, so its handlers must not be attributed here.
    """
    stack = list(body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef, ast.For,
                             ast.AsyncFor, ast.While)):
            continue
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)


def _handler_retries_unconditionally(handler: ast.ExceptHandler) -> bool:
    """True when a handler swallows the failure and always retries."""
    if _body_reraises(handler.body):
        return False
    for stmt in handler.body:
        if isinstance(stmt, (ast.Break, ast.Return)):
            return False
        if isinstance(stmt, ast.Continue):
            return True  # top-level continue: every failure retries
    return _body_is_noop(handler.body)  # swallow-and-fall-through


@register
class UnboundedRetryLoopRule(Rule):
    id = "ROB003"
    title = "retry loop with no attempt bound"
    scopes = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            if not _constant_true(node.test):
                continue  # a real condition bounds the retries
            for stmt in _own_loop_statements(node.body):
                if not isinstance(stmt, ast.Try):
                    continue
                for handler in stmt.handlers:
                    if _handler_retries_unconditionally(handler):
                        yield ctx.finding(
                            self.id,
                            handler,
                            "'while True' retry swallows the failure and "
                            "retries unconditionally: a persistently "
                            "failing dependency spins forever; bound it "
                            "with an attempt counter or deadline before "
                            "the continue",
                        )
