"""Determinism rules: no wall-clock reads, no unseeded or global RNG.

The content-addressed bench cache (PR 2) treats a simulation as a pure
function of its :class:`~repro.sweep.spec.ExperimentSpec`; a single
wall-clock read or unseeded random draw silently poisons every cached
figure derived from the run.  These rules make that contract checkable at
commit time.

``time.perf_counter``/``time.monotonic`` are deliberately allowed: they
measure *elapsed host time* for reporting (the sweep runner's wall/work
accounting) and never feed simulated state.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Rule, register
from ..findings import Finding
from .common import ImportMap, call_name

#: Wall-clock reads that make output depend on when the run happened.
WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.strftime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: RNG factories that are fine *with* a seed argument, poison without one.
SEEDABLE_FACTORIES = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
}

#: Draws from interpreter-global RNG state: unseedable per-component and
#: shared across everything in the process.
GLOBAL_RANDOM_FNS = {
    f"random.{fn}"
    for fn in (
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "gauss", "normalvariate", "expovariate",
        "betavariate", "paretovariate", "triangular", "vonmisesvariate",
        "weibullvariate", "lognormvariate", "gammavariate", "seed",
        "getrandbits", "randbytes",
    )
}
GLOBAL_NUMPY_FNS = {
    f"numpy.random.{fn}"
    for fn in (
        "rand", "randn", "random", "random_sample", "ranf", "randint",
        "choice", "shuffle", "permutation", "normal", "uniform",
        "standard_normal", "exponential", "poisson", "binomial", "bytes",
        "seed",
    )
}


@register
class WallClockRule(Rule):
    id = "DET001"
    title = "wall-clock read in simulator code"
    scopes = ("src", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(imports, node)
            if name in WALL_CLOCK:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{name}() makes output depend on when the run "
                    f"happened; derive timestamps from the spec or use "
                    f"time.perf_counter for elapsed-time reporting",
                )


@register
class UnseededRngRule(Rule):
    id = "DET002"
    title = "RNG constructed without a seed"
    scopes = ("src", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(imports, node)
            if name not in SEEDABLE_FACTORIES:
                continue
            seeded = bool(node.args) or any(
                kw.arg in (None, "seed", "x") for kw in node.keywords
            )
            if not seeded:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{name}() without a seed expression draws entropy "
                    f"from the OS; thread the config/scale seed through",
                )


@register
class GlobalRngRule(Rule):
    id = "DET003"
    title = "module-global RNG state"
    scopes = ("src", "benchmarks")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(imports, node)
            if name in GLOBAL_RANDOM_FNS or name in GLOBAL_NUMPY_FNS:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{name}() uses interpreter-global RNG state shared "
                    f"by every component; use a seeded instance "
                    f"(random.Random(seed) / np.random.default_rng(seed))",
                )
