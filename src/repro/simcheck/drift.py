"""Table↔code drift pass (PROTO007).

PR 3's PROTO001–006 verify the declarative ``TRANSITION_TABLE``s in
isolation; nothing verified that the tables still describe the
*executable* models next to them.  This pass closes that gap: it
extracts the ``(state, event)`` pairs each model actually handles and
diffs them, at stimulus granularity, against the table's legal rows.

Extraction combines two sources:

* **Inference** over the dispatch in ``apply()``: each
  ``if action.name == "load": return self._load(...)`` arm binds a
  handler to a table event (``load -> local_load`` etc., plus any
  ``is_write=...`` keyword binding).  The handler body is then walked
  with a three-valued path evaluator per candidate state: the state
  variable comes from the ``cache_state, version = ...caches[host]``
  unpack, state constants from the module's ``_X = int(CacheState.Y)``
  assigns.  A state whose every path raises is *rejected*; a state with
  a non-raising path is *handled*.

* **Annotations** ``# simcheck: handles role(State, event) ...`` on the
  branches that embody remote/device transitions — the atomic-
  transaction models fold those into the local access that triggers
  them, so there is no dispatch arm to infer from.

The diff reports three error shapes, all PROTO007:

* a legal table stimulus with no handling evidence in the model
  (a table row was added — or a model branch deleted — unilaterally);
* a handled/annotated stimulus the table declares illegal-only or does
  not declare at all (the model grew behaviour the table never ratified);
* an inferred-rejected stimulus the table declares legal (the model
  raises where the table promises a transition).

Like the VEC pass, this is source-anchored so tests can feed doctored
modules/tables to prove each shape fires.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..coherence.table import ProtocolTable
from .findings import Finding
from .protocol import PROTOCOL_MODULES, _table_line

#: Action names in ``apply()`` dispatch -> table events of the host role.
ACTION_EVENTS = {
    "load": "local_load",
    "store": "local_store",
    "evict": "evict",
}

#: The role whose events the dispatch inference covers.
HOST_ROLE = "host"

_HANDLES_RE = re.compile(r"simcheck:\s*handles\s+(.+)$")
_PAIR_RE = re.compile(r"(\w+)\(\s*(\w+)\s*,\s*(\w+)\s*\)")

Stimulus = Tuple[str, str, str]  # (role, state, event)

_TRUE, _FALSE, _UNKNOWN = True, False, None


def _err(relpath: str, line: int, table: str, message: str) -> Finding:
    return Finding(
        rule="PROTO007",
        path=relpath,
        line=line,
        message=f"{table}: {message}",
        severity="error",
        line_text=f"{table}::drift::{message}",
    )


# ---------------------------------------------------------------------------
# Source extraction
# ---------------------------------------------------------------------------

def _state_constants(tree: ast.Module) -> Dict[str, str]:
    """``_M -> "M"`` from module-level ``_M = int(CacheState.M)``."""
    out: Dict[str, str] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        value = node.value
        if (
            isinstance(target, ast.Name)
            and isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "int"
            and len(value.args) == 1
            and isinstance(value.args[0], ast.Attribute)
            and isinstance(value.args[0].value, ast.Name)
            and value.args[0].value.id == "CacheState"
        ):
            out[target.id] = value.args[0].attr
    return out


def _model_class(tree: ast.Module) -> Optional[ast.ClassDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and any(
            isinstance(item, ast.FunctionDef) and item.name == "apply"
            for item in node.body
        ):
            return node
    return None


def _dispatch_arms(
    apply_fn: ast.FunctionDef,
) -> List[Tuple[str, str, Dict[str, bool]]]:
    """``(action_name, handler_method, env_bindings)`` per dispatch arm."""
    arms: List[Tuple[str, str, Dict[str, bool]]] = []
    for node in ast.walk(apply_fn):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Attribute)
            and test.left.attr == "name"
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and isinstance(test.comparators[0], ast.Constant)
        ):
            continue
        action = test.comparators[0].value
        for stmt in node.body:
            if not (
                isinstance(stmt, ast.Return)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
            ):
                continue
            env: Dict[str, bool] = {}
            for kw in stmt.value.keywords:
                if kw.arg and isinstance(kw.value, ast.Constant) and isinstance(
                    kw.value.value, bool
                ):
                    env[kw.arg] = kw.value.value
            arms.append((action, stmt.value.func.attr, env))
    return arms


def _state_var(handler: ast.FunctionDef) -> Optional[str]:
    """The name bound to this host's cache state, from the
    ``cache_state, version = <caches>[host]`` unpack."""
    for node in ast.walk(handler):
        if not isinstance(node, ast.Assign):
            continue
        target = node.targets[0] if len(node.targets) == 1 else None
        if not (
            isinstance(target, ast.Tuple)
            and len(target.elts) == 2
            and isinstance(target.elts[0], ast.Name)
        ):
            continue
        value = node.value
        if isinstance(value, ast.Subscript):
            base = value.value
            base_name = (
                base.id
                if isinstance(base, ast.Name)
                else base.attr
                if isinstance(base, ast.Attribute)
                else ""
            )
            if "caches" in base_name:
                return target.elts[0].id
    return None


# ---------------------------------------------------------------------------
# Three-valued path evaluation
# ---------------------------------------------------------------------------

class _PathEval:
    """Does any path through a handler return (vs. every path raising)
    when the state variable holds one concrete label?"""

    def __init__(
        self,
        state_var: Optional[str],
        state_label: str,
        constants: Dict[str, str],
        env: Dict[str, bool],
    ) -> None:
        self.state_var = state_var
        self.state_label = state_label
        self.constants = constants
        self.env = env

    # -- expression truth ----------------------------------------------
    def truth(self, expr: ast.expr):
        if isinstance(expr, ast.Compare) and len(expr.ops) == 1:
            return self._compare(expr)
        if isinstance(expr, ast.Name) and expr.id in self.env:
            return self.env[expr.id]
        if isinstance(expr, ast.Constant) and isinstance(expr.value, bool):
            return expr.value
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
            inner = self.truth(expr.operand)
            return _UNKNOWN if inner is _UNKNOWN else not inner
        if isinstance(expr, ast.BoolOp):
            values = [self.truth(v) for v in expr.values]
            if isinstance(expr.op, ast.And):
                if any(v is _FALSE for v in values):
                    return _FALSE
                if all(v is _TRUE for v in values):
                    return _TRUE
                return _UNKNOWN
            if any(v is _TRUE for v in values):
                return _TRUE
            if all(v is _FALSE for v in values):
                return _FALSE
            return _UNKNOWN
        return _UNKNOWN

    def _compare(self, expr: ast.Compare):
        left, op, right = expr.left, expr.ops[0], expr.comparators[0]
        if not (
            isinstance(left, ast.Name) and left.id == self.state_var
        ):
            return _UNKNOWN
        if isinstance(op, (ast.Eq, ast.NotEq)):
            label = self._label_of(right)
            if label is None:
                return _UNKNOWN
            eq = label == self.state_label
            return eq if isinstance(op, ast.Eq) else not eq
        if isinstance(op, (ast.In, ast.NotIn)) and isinstance(
            right, (ast.Tuple, ast.List, ast.Set)
        ):
            labels = [self._label_of(e) for e in right.elts]
            if any(lbl is None for lbl in labels):
                return _UNKNOWN
            member = self.state_label in labels
            return member if isinstance(op, ast.In) else not member
        return _UNKNOWN

    def _label_of(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return self.constants.get(expr.id)
        return None

    # -- statement outcomes --------------------------------------------
    def outcomes(self, body: Sequence[ast.stmt]) -> Set[str]:
        """{"return", "raise", "fall"} reachable through ``body``."""
        out: Set[str] = set()
        for stmt in body:
            if isinstance(stmt, ast.Return):
                out.add("return")
                return out
            if isinstance(stmt, ast.Raise):
                out.add("raise")
                return out
            if isinstance(stmt, ast.If):
                truth = self.truth(stmt.test)
                branch_out: Set[str] = set()
                if truth is not _FALSE:
                    branch_out |= self.outcomes(stmt.body)
                if truth is not _TRUE:
                    branch_out |= (
                        self.outcomes(stmt.orelse)
                        if stmt.orelse
                        else {"fall"}
                    )
                out |= branch_out - {"fall"}
                if "fall" not in branch_out:
                    return out
                continue
            if isinstance(stmt, (ast.For, ast.While)):
                # Conservative: body may or may not run; terminal
                # outcomes inside are possible, fall-through always is.
                out |= self.outcomes(stmt.body) - {"fall"}
                continue
            if isinstance(stmt, (ast.With, ast.Try)):
                inner = self.outcomes(stmt.body)
                if isinstance(stmt, ast.Try):
                    for handler in stmt.handlers:
                        inner |= self.outcomes(handler.body)
                out |= inner - {"fall"}
                if "fall" not in inner:
                    return out
                continue
            # plain statement: keep walking
        out.add("fall")
        return out


# ---------------------------------------------------------------------------
# The pass
# ---------------------------------------------------------------------------

def _parse_annotations(
    source: str, table: ProtocolTable, relpath: str
) -> Tuple[Dict[Stimulus, int], List[Finding]]:
    """``# simcheck: handles role(State, event)`` pairs with their lines."""
    handled: Dict[Stimulus, int] = {}
    findings: List[Finding] = []
    roles = {role.name: role for role in table.roles}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _HANDLES_RE.search(text)
        if not match:
            continue
        pairs = _PAIR_RE.findall(match.group(1))
        if not pairs:
            findings.append(
                _err(
                    relpath,
                    lineno,
                    table.name,
                    "handles annotation with no role(State, event) pairs",
                )
            )
        for role_name, state, event in pairs:
            role = roles.get(role_name)
            if role is None:
                findings.append(
                    _err(
                        relpath, lineno, table.name,
                        f"handles annotation names unknown role "
                        f"{role_name!r} (roles: {sorted(roles)})",
                    )
                )
                continue
            if state not in role.states:
                findings.append(
                    _err(
                        relpath, lineno, table.name,
                        f"handles annotation names unknown state "
                        f"{role_name}.{state!r} ({list(role.states)})",
                    )
                )
                continue
            if event not in role.events:
                findings.append(
                    _err(
                        relpath, lineno, table.name,
                        f"handles annotation names unknown event "
                        f"{role_name}.{event!r} ({list(role.events)})",
                    )
                )
                continue
            handled.setdefault((role_name, state, event), lineno)
    return handled, findings


def analyze_module_drift(
    source: str,
    table: ProtocolTable,
    relpath: str,
    table_line: int = 1,
) -> List[Finding]:
    """Diff one protocol module's executable model against ``table``."""
    findings: List[Finding] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:  # pragma: no cover - tree never commits broken
        return [
            _err(relpath, exc.lineno or 1, table.name,
                 f"drift pass could not parse module: {exc.msg}")
        ]
    lines = source.splitlines()

    handled, findings_ann = _parse_annotations(source, table, relpath)
    findings.extend(findings_ann)

    constants = _state_constants(tree)
    model = _model_class(tree)
    host_role = next(
        (role for role in table.roles if role.name == HOST_ROLE), None
    )
    rejected: Dict[Stimulus, int] = {}
    if model is not None and host_role is not None:
        methods = {
            item.name: item
            for item in model.body
            if isinstance(item, ast.FunctionDef)
        }
        arms = _dispatch_arms(methods["apply"]) if "apply" in methods else []
        for action, handler_name, env in arms:
            event = ACTION_EVENTS.get(action)
            handler = methods.get(handler_name)
            if event is None or handler is None:
                continue
            state_var = _state_var(handler)
            for state in host_role.states:
                if state_var is not None and state not in constants.values():
                    # The model encodes no constant for this table state;
                    # path evaluation can't distinguish it — treat the
                    # handler's behaviour as unknown, not as evidence.
                    continue
                evaluator = _PathEval(state_var, state, constants, dict(env))
                outcome = evaluator.outcomes(handler.body)
                stim = (HOST_ROLE, state, event)
                if "return" in outcome or "fall" in outcome:
                    handled.setdefault(stim, handler.lineno)
                elif outcome == {"raise"}:
                    rejected.setdefault(stim, handler.lineno)

    # -- the diff -------------------------------------------------------
    by_stimulus = table.by_stimulus()
    legal: Set[Stimulus] = set()
    illegal_only: Set[Stimulus] = set()
    for stimulus, rows in by_stimulus.items():
        if any(not row.illegal for row in rows):
            legal.add(stimulus)
        else:
            illegal_only.add(stimulus)

    for stimulus in sorted(legal - set(handled)):
        role, state, event = stimulus
        findings.append(
            _err(
                relpath,
                table_line,
                table.name,
                f"table declares {role}({state}, {event}) legal but the "
                f"model neither handles it (dispatch inference) nor "
                f"claims it via a '# simcheck: handles' annotation",
            )
        )
    for stimulus, lineno in sorted(handled.items()):
        if stimulus in legal:
            continue
        role, state, event = stimulus
        if stimulus in illegal_only:
            findings.append(
                _err(
                    relpath,
                    lineno,
                    table.name,
                    f"model handles {role}({state}, {event}) but the table "
                    f"declares that stimulus illegal",
                )
            )
        else:
            findings.append(
                _err(
                    relpath,
                    lineno,
                    table.name,
                    f"model handles {role}({state}, {event}) but the table "
                    f"has no row for that stimulus at all",
                )
            )
    for stimulus, lineno in sorted(rejected.items()):
        if stimulus in legal:
            role, state, event = stimulus
            findings.append(
                _err(
                    relpath,
                    lineno,
                    table.name,
                    f"table declares {role}({state}, {event}) legal but "
                    f"every model path raises for it",
                )
            )
    return findings


def analyze_repo_drift(
    root: str, relpaths: Optional[Sequence[str]] = None
) -> Tuple[List[Finding], List[str]]:
    """Run the drift pass over the repo's protocol module pair.

    Mirrors :func:`analyze_repo_tables`: ``relpaths`` filters to modules
    in the linted set; returns ``(findings, table_names_checked)``.
    """
    import os

    from ..coherence import base_protocol, pipm_protocol

    wanted = set(relpaths) if relpaths is not None else None
    findings: List[Finding] = []
    checked: List[str] = []
    for relpath, module in (
        (PROTOCOL_MODULES[0], base_protocol),
        (PROTOCOL_MODULES[1], pipm_protocol),
    ):
        if wanted is not None and relpath not in wanted:
            continue
        table = getattr(module, "TRANSITION_TABLE", None)
        if table is None:
            continue  # PROTO005 from the table pass already covers this
        path = os.path.join(root, relpath)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError:
            continue
        findings.extend(
            analyze_module_drift(
                source, table, relpath, table_line=_table_line(path)
            )
        )
        checked.append(table.name)
    return findings, checked
