"""Backend-conformance pass: fast-path closures vs. the slow path.

PR 7's ``vector`` backend hand-flattens :meth:`MultiHostSystem.access`
into closures built by ``_make_flat_path``/``_make_dram_path`` in
``src/repro/sim/engine.py``.  The flattening is only correct while
three structural invariants hold, and until now they were guarded only
by golden records at runtime.  This pass proves them statically on
every lint run:

VEC001 — every deferred statistic cell the hot closure increments is
    folded into a real counter by the factory's ``flush()``.  A cell
    that is incremented but never read in flush silently *drops* those
    statistics from the run's records.

VEC002 — the slow path's escalation branches and the fast path's bail
    predicates form the same set.  Escalations are annotated
    ``# simcheck: escalates[tag]`` in ``system.py``; bails are
    annotated ``# simcheck: bails[tag]`` in ``engine.py``.  A tag on
    one side without its twin on the other — or an unannotated
    ``return None`` in the classify phase, or an unannotated
    ``self._upgrade(...)`` escalation call — is an error.

VEC003 — the classify phase of ``flat`` (between the
    ``# simcheck: phase[classify]`` and ``# simcheck: phase[execute]``
    markers) performs no writes: no attribute/subscript stores, no
    augmented assignment to deferred cells, no deletes, no calls to
    container mutators.  Purity is what makes a bail safe — the slow
    path re-executes the access from scratch.

VEC004 — every folded cell is reset to zero in ``flush()``; folding
    without resetting double-counts on the next flush.

The pass is source-anchored, not import-anchored: tests feed it
doctored copies of the real sources to prove each rule fires.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .findings import Finding

#: The module pair this pass diffs, relative to the repo root.
CONFORMANCE_MODULES = (
    "src/repro/sim/engine.py",
    "src/repro/sim/system.py",
)

_BAILS_RE = re.compile(r"simcheck:\s*bails\[([\w-]+)\]")
_ESCALATES_RE = re.compile(r"simcheck:\s*escalates\[([\w-]+)\]")
_PHASE_RE = re.compile(r"simcheck:\s*phase\[(\w+)\]")

#: Method names that mutate their receiver; calling one in the classify
#: phase would leave state changed before a potential bail.
MUTATOR_METHODS = frozenset(
    {
        "pop", "add", "append", "extend", "insert", "remove", "discard",
        "clear", "update", "setdefault", "popitem", "sort", "write_line",
        "invalidate_line", "downgrade_line", "touch",
    }
)

#: Factory functions whose inner closures the pass analyzes.
FACTORY_NAMES = ("_make_flat_path", "_make_dram_path")

#: The hot closure holding the two-phase classify/execute split.
PHASED_CLOSURE = "flat"


def _err(relpath: str, line: int, rule: str, message: str, line_text: str = "") -> Finding:
    return Finding(
        rule=rule,
        path=relpath,
        line=line,
        message=message,
        severity="error",
        line_text=line_text,
    )


def _tags_with_lines(source: str, regex: re.Pattern) -> Dict[str, List[int]]:
    out: Dict[str, List[int]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        for match in regex.finditer(text):
            out.setdefault(match.group(1), []).append(lineno)
    return out


def _line_annotated(lines: List[str], lineno: int, regex: re.Pattern) -> bool:
    """Annotation on the statement's line or the comment line above it."""
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(lines) and regex.search(lines[candidate - 1]):
            return True
    return False


class _Factory:
    """One ``_make_*`` factory: its hot closures and its flush."""

    def __init__(self, node: ast.FunctionDef) -> None:
        self.node = node
        self.flush: Optional[ast.FunctionDef] = None
        self.hot: List[ast.FunctionDef] = []
        self.list_cells: Set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef):
                if stmt.name == "flush":
                    self.flush = stmt
                else:
                    self.hot.append(stmt)
            elif isinstance(stmt, ast.Assign):
                # pend_n = [0] * n_ch style list cells.
                value = stmt.value
                is_zero_list = (
                    isinstance(value, ast.BinOp)
                    and isinstance(value.op, ast.Mult)
                    and isinstance(value.left, ast.List)
                    and all(
                        isinstance(e, ast.Constant) and e.value == 0
                        for e in value.left.elts
                    )
                )
                if is_zero_list:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            self.list_cells.add(target.id)

    # -- cell inventories ----------------------------------------------
    def scalar_cells(self) -> Set[str]:
        """Names declared nonlocal by flush: the deferred-stat contract."""
        if self.flush is None:
            return set()
        cells: Set[str] = set()
        for node in ast.walk(self.flush):
            if isinstance(node, ast.Nonlocal):
                cells.update(node.names)
        return cells

    def incremented_scalars(self) -> Dict[str, int]:
        """cell -> first line where a hot closure increments it."""
        out: Dict[str, int] = {}
        cells = self.scalar_cells()
        for fn in self.hot:
            for node in ast.walk(fn):
                if (
                    isinstance(node, ast.AugAssign)
                    and isinstance(node.target, ast.Name)
                    and node.target.id in cells
                ):
                    out.setdefault(node.target.id, node.lineno)
        return out

    def incremented_lists(self) -> Dict[str, int]:
        """list cell -> first line where a hot closure increments a slot."""
        out: Dict[str, int] = {}
        for fn in self.hot:
            for node in ast.walk(fn):
                if (
                    isinstance(node, ast.AugAssign)
                    and isinstance(node.target, ast.Subscript)
                    and isinstance(node.target.value, ast.Name)
                    and node.target.value.id in self.list_cells
                ):
                    out.setdefault(node.target.value.id, node.lineno)
        return out

    def flush_reads(self) -> Set[str]:
        """Names the flush *reads* (the fold): scalar Name loads and
        list-cell subscript loads."""
        reads: Set[str] = set()
        if self.flush is None:
            return reads
        for node in ast.walk(self.flush):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                reads.add(node.id)
        return reads

    def flush_resets(self) -> Set[str]:
        """Cells flush resets to zero: chained ``a = b = 0`` scalar
        assigns and ``cell[i] = 0`` subscript stores."""
        resets: Set[str] = set()
        if self.flush is None:
            return resets
        for node in ast.walk(self.flush):
            if not isinstance(node, ast.Assign):
                continue
            if not (
                isinstance(node.value, ast.Constant) and node.value.value == 0
            ):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    resets.add(target.id)
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    resets.add(target.value.id)
        return resets


def _find_factories(tree: ast.Module) -> List[_Factory]:
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name in FACTORY_NAMES:
            out.append(_Factory(node))
    return out


def _classify_region(
    flat: ast.FunctionDef, lines: List[str]
) -> Optional[Tuple[int, int]]:
    """(classify_marker_line, execute_marker_line) inside ``flat``."""
    markers: Dict[str, int] = {}
    start, end = flat.lineno, max(
        getattr(n, "end_lineno", flat.lineno) for n in ast.walk(flat)
    )
    for lineno in range(start, min(end, len(lines)) + 1):
        match = _PHASE_RE.search(lines[lineno - 1])
        if match:
            markers.setdefault(match.group(1), lineno)
    if "classify" in markers and "execute" in markers:
        return markers["classify"], markers["execute"]
    return None


def analyze_backend_conformance(
    engine_source: str,
    system_source: str,
    engine_relpath: str = CONFORMANCE_MODULES[0],
    system_relpath: str = CONFORMANCE_MODULES[1],
) -> List[Finding]:
    """Run VEC001–VEC004 over one engine/system source pair."""
    findings: List[Finding] = []
    try:
        engine_tree = ast.parse(engine_source)
        ast.parse(system_source)
    except SyntaxError as exc:  # pragma: no cover - tree never commits broken
        return [
            _err(
                engine_relpath,
                exc.lineno or 1,
                "VEC001",
                f"conformance pass could not parse sources: {exc.msg}",
            )
        ]
    engine_lines = engine_source.splitlines()
    system_lines = system_source.splitlines()

    factories = _find_factories(engine_tree)
    if not factories:
        findings.append(
            _err(
                engine_relpath,
                1,
                "VEC001",
                "no _make_flat_path/_make_dram_path factory found; the "
                "conformance pass has lost its anchor — update "
                "simcheck/conformance.py alongside the engine refactor",
            )
        )
        return findings

    for factory in factories:
        findings.extend(_check_cells(factory, engine_relpath, engine_lines))

    findings.extend(
        _check_escalations(
            engine_source,
            system_source,
            engine_relpath,
            system_relpath,
            factories,
            engine_lines,
            system_lines,
        )
    )
    for factory in factories:
        findings.extend(_check_purity(factory, engine_relpath, engine_lines))
    return findings


def _check_cells(
    factory: _Factory, relpath: str, lines: List[str]
) -> List[Finding]:
    findings: List[Finding] = []
    name = factory.node.name
    if factory.flush is None:
        findings.append(
            _err(
                relpath,
                factory.node.lineno,
                "VEC001",
                f"{name} builds a hot path but defines no flush(); "
                f"deferred statistics can never fold back",
            )
        )
        return findings
    reads = factory.flush_reads()
    resets = factory.flush_resets()

    for cell, lineno in sorted(factory.incremented_scalars().items()):
        if cell not in reads:
            findings.append(
                _err(
                    relpath,
                    lineno,
                    "VEC001",
                    f"{name}: deferred cell '{cell}' is incremented on the "
                    f"hot path but never folded in flush(); its counts are "
                    f"silently dropped from the run's records",
                    line_text=f"{name}::{cell}",
                )
            )
        elif cell not in resets:
            findings.append(
                _err(
                    relpath,
                    lineno,
                    "VEC004",
                    f"{name}: deferred cell '{cell}' is folded but never "
                    f"reset to 0 in flush(); the next flush double-counts it",
                    line_text=f"{name}::{cell}",
                )
            )
    for cell, lineno in sorted(factory.incremented_lists().items()):
        if cell not in reads:
            findings.append(
                _err(
                    relpath,
                    lineno,
                    "VEC001",
                    f"{name}: deferred slot array '{cell}' is incremented "
                    f"on the hot path but never read in flush()",
                    line_text=f"{name}::{cell}",
                )
            )
        elif cell not in resets:
            findings.append(
                _err(
                    relpath,
                    lineno,
                    "VEC004",
                    f"{name}: deferred slot array '{cell}' is folded but "
                    f"never zeroed in flush(); the next flush double-counts",
                    line_text=f"{name}::{cell}",
                )
            )
    return findings


def _check_escalations(
    engine_source: str,
    system_source: str,
    engine_relpath: str,
    system_relpath: str,
    factories: List[_Factory],
    engine_lines: List[str],
    system_lines: List[str],
) -> List[Finding]:
    findings: List[Finding] = []
    bails = _tags_with_lines(engine_source, _BAILS_RE)
    escalates = _tags_with_lines(system_source, _ESCALATES_RE)

    for tag in sorted(set(escalates) - set(bails)):
        findings.append(
            _err(
                system_relpath,
                escalates[tag][0],
                "VEC002",
                f"slow path escalates[{tag}] has no matching bails[{tag}] "
                f"in the fast path; the flat closure would execute an "
                f"access the slow path treats as a cross-host transaction",
                line_text=f"escalates::{tag}",
            )
        )
    for tag in sorted(set(bails) - set(escalates)):
        findings.append(
            _err(
                engine_relpath,
                bails[tag][0],
                "VEC002",
                f"fast path bails[{tag}] has no matching escalates[{tag}] "
                f"annotation in the slow path; either the escalation branch "
                f"was removed (delete the bail) or its annotation was lost",
                line_text=f"bails::{tag}",
            )
        )

    # Inference anchors: every classify-phase `return None` must carry a
    # bails tag, and every slow-path `_upgrade(` escalation call must
    # carry an escalates tag — so new branches can't slip in untagged.
    for factory in factories:
        for fn in factory.hot:
            if fn.name != PHASED_CLOSURE:
                continue
            region = _classify_region(fn, engine_lines)
            for node in ast.walk(fn):
                if not isinstance(node, ast.Return):
                    continue
                is_none = node.value is None or (
                    isinstance(node.value, ast.Constant)
                    and node.value.value is None
                )
                if not is_none:
                    continue
                in_region = region is None or (
                    region[0] < node.lineno < region[1]
                )
                if in_region and not _line_annotated(
                    engine_lines, node.lineno, _BAILS_RE
                ):
                    findings.append(
                        _err(
                            engine_relpath,
                            node.lineno,
                            "VEC002",
                            "classify-phase bail without a "
                            "'# simcheck: bails[tag]' annotation; name the "
                            "slow-path escalation this defers to",
                        )
                    )
    for lineno, text in enumerate(system_lines, start=1):
        if "self._upgrade(" in text and not _line_annotated(
            system_lines, lineno, _ESCALATES_RE
        ):
            stripped = text.lstrip()
            if stripped.startswith("def ") or stripped.startswith("#"):
                continue
            findings.append(
                _err(
                    system_relpath,
                    lineno,
                    "VEC002",
                    "coherence-upgrade escalation without a "
                    "'# simcheck: escalates[tag]' annotation; the fast "
                    "path needs a matching bail predicate",
                )
            )
    return findings


def _check_purity(
    factory: _Factory, relpath: str, lines: List[str]
) -> List[Finding]:
    findings: List[Finding] = []
    for fn in factory.hot:
        if fn.name != PHASED_CLOSURE:
            continue
        region = _classify_region(fn, lines)
        if region is None:
            findings.append(
                _err(
                    relpath,
                    fn.lineno,
                    "VEC003",
                    f"{factory.node.name}::{fn.name} has no "
                    f"'# simcheck: phase[classify]' / 'phase[execute]' "
                    f"markers; the purity check cannot locate the "
                    f"classify region",
                )
            )
            continue
        lo, hi = region
        nonlocals: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Nonlocal):
                nonlocals.update(node.names)
        for node in ast.walk(fn):
            lineno = getattr(node, "lineno", None)
            if lineno is None or not (lo < lineno < hi):
                continue
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        findings.append(
                            _err(
                                relpath,
                                lineno,
                                "VEC003",
                                "classify phase writes engine/cache/"
                                "directory state; a bail after this point "
                                "would leave the mutation behind for the "
                                "slow path to double-apply",
                            )
                        )
            elif isinstance(node, ast.AugAssign):
                bad = isinstance(
                    node.target, (ast.Attribute, ast.Subscript)
                ) or (
                    isinstance(node.target, ast.Name)
                    and node.target.id in nonlocals
                )
                if bad:
                    findings.append(
                        _err(
                            relpath,
                            lineno,
                            "VEC003",
                            "classify phase mutates a deferred cell or "
                            "shared object; bails must leave zero state "
                            "changed",
                        )
                    )
            elif isinstance(node, ast.Delete):
                findings.append(
                    _err(
                        relpath,
                        lineno,
                        "VEC003",
                        "classify phase deletes state; bails must leave "
                        "zero state changed",
                    )
                )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATOR_METHODS
                ):
                    findings.append(
                        _err(
                            relpath,
                            lineno,
                            "VEC003",
                            f"classify phase calls mutator "
                            f"'.{node.func.attr}(...)'; only pure reads "
                            f"are allowed before the execute marker",
                        )
                    )
    return findings


def analyze_repo_conformance(
    root: Path, relpaths: Iterable[str]
) -> Tuple[List[Finding], bool]:
    """Run the pass when the linted set includes the engine module.

    Returns ``(findings, ran)`` — ``ran`` is False when the scope left
    out the engine (e.g. linting a single unrelated file).
    """
    relset = set(relpaths)
    if CONFORMANCE_MODULES[0] not in relset:
        return [], False
    try:
        engine_source = (root / CONFORMANCE_MODULES[0]).read_text()
        system_source = (root / CONFORMANCE_MODULES[1]).read_text()
    except OSError as exc:
        return (
            [
                _err(
                    CONFORMANCE_MODULES[0],
                    1,
                    "VEC002",
                    f"conformance pass could not read module pair: {exc}",
                )
            ],
            True,
        )
    return analyze_backend_conformance(engine_source, system_source), True
