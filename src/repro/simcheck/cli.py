"""``python -m repro lint`` — the simcheck driver.

Exit codes: ``0`` clean (info notes allowed), ``1`` at least one error
finding survived suppressions and the baseline, ``2`` usage or
environment problems (unknown scope, unreadable baseline, bad path,
conflicting flags).

Pass layout
-----------
One invocation runs up to three analysis families, each gated by what
the requested paths actually cover:

* the AST rule engine (DET/ORD/UNIT/FLOW/... rules) over every in-scope
  ``.py`` file, plus the backend-conformance pass (``VEC001-004``) when
  the linted set includes ``sim/engine.py``;
* the protocol-table analyzer (``PROTO001-006``) and the table<->code
  drift pass (``PROTO007``) when it includes the coherence modules.

``--no-protocol`` drops the second family; ``--protocol-only`` drops
the first.  CI runs the two halves as separate matrix jobs so a
protocol regression and an engine regression fail independently.
Conformance/drift findings are never baselined — they assert the tree
is self-consistent *now*.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import pathlib
import sys
from typing import List, Optional

from . import rules as _rules  # noqa: F401  (import populates the registry)
from .baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    prune_baseline,
    write_baseline,
)
from .conformance import CONFORMANCE_MODULES, analyze_repo_conformance
from .drift import analyze_repo_drift
from .engine import (
    LintEngine,
    SCOPES,
    all_rules,
    iter_python_files,
    relativize,
)
from .findings import LintReport
from .protocol import PROTOCOL_MODULES, analyze_repo_tables


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--scope", action="append", choices=SCOPES, default=None,
        dest="scopes", metavar="SCOPE",
        help="lint this scope; repeatable (default: src only — "
             "benchmarks/ and tests/ are opt-in)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable report on stdout",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file of grandfathered findings "
             f"(default: {DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report all findings",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="snapshot current error findings as the new baseline and exit",
    )
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="drop baseline fingerprints whose file no longer exists, "
             "rewrite the baseline, and exit",
    )
    parser.add_argument(
        "--no-protocol", action="store_true",
        help="skip the protocol-table analyzer and the PROTO007 drift pass",
    )
    parser.add_argument(
        "--protocol-only", action="store_true",
        help="run only the protocol-table analyzer and drift pass "
             "(skip AST rules and backend conformance)",
    )
    parser.add_argument(
        "--strict-ignores", action="store_true",
        help="escalate unused '# simcheck: ignore' pragmas (SUPP001) "
             "from notes to errors",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )


def _list_rules() -> int:
    for rule in all_rules():
        scopes = ",".join(rule.scopes)
        print(f"{rule.id:<9} [{scopes}] {rule.title}")
    print(f"{'SUPP001':<9} [engine] note: unused/unknown suppression pragma")
    print(f"{'VEC001':<9} [backend] fast-path stat cell incremented but "
          f"never flushed")
    print(f"{'VEC002':<9} [backend] escalation branch without a matching "
          f"fast-path bail (or vice versa)")
    print(f"{'VEC003':<9} [backend] classify-phase closure mutates shared "
          f"state")
    print(f"{'VEC004':<9} [backend] flush reads a cell it never resets")
    print(f"{'PROTO001':<9} [tables] unhandled (state, event) pair")
    print(f"{'PROTO002':<9} [tables] ambiguous transitions for one stimulus")
    print(f"{'PROTO003':<9} [tables] emitted/awaited message without peer")
    print(f"{'PROTO004':<9} [tables] static wait-for cycle (deadlock)")
    print(f"{'PROTO005':<9} [tables] unknown state/event/role in a row")
    print(f"{'PROTO006':<9} [tables] note: message types never referenced")
    print(f"{'PROTO007':<9} [tables] transition table drifted from handler "
          f"code")
    return 0


def run_lint(args) -> int:
    if args.list_rules:
        return _list_rules()

    if args.no_protocol and args.protocol_only:
        print(
            "error: --no-protocol and --protocol-only are mutually "
            "exclusive",
            file=sys.stderr,
        )
        return 2

    root = os.getcwd()

    if args.prune_baseline:
        baseline_path = args.baseline or DEFAULT_BASELINE
        try:
            kept, dropped = prune_baseline(baseline_path, root)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot prune baseline: {exc}", file=sys.stderr)
            return 2
        print(
            f"pruned {baseline_path}: dropped {dropped} stale "
            f"fingerprint(s), kept {kept}"
        )
        return 0

    scopes = tuple(args.scopes) if args.scopes else ("src",)
    for path in args.paths:
        if not os.path.exists(path):
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2

    linted = {
        relativize(path, root) for path in iter_python_files(args.paths)
    }

    report = LintReport()
    if args.protocol_only:
        report.files_checked = 0
    else:
        engine = LintEngine(scopes=scopes, root=root)
        result = engine.run(args.paths)
        report.findings = list(result.findings)
        report.suppressed = result.suppressed
        report.files_checked = result.files_checked

        # Backend conformance fires only when the run covers the vector
        # engine module (so `lint benchmarks/` stays fast).
        conf_findings, _ = analyze_repo_conformance(
            pathlib.Path(root), linted & set(CONFORMANCE_MODULES)
        )
        report.findings.extend(conf_findings)

    # The protocol pass fires only when the run actually covers the
    # modules that define the tables.
    if not args.no_protocol:
        wanted = [rel for rel in PROTOCOL_MODULES if rel in linted]
        if wanted:
            table_findings, checked = analyze_repo_tables(root, wanted)
            report.findings.extend(table_findings)
            report.tables_checked = len(checked)
            drift_findings, _ = analyze_repo_drift(root, wanted)
            report.findings.extend(drift_findings)

    if args.strict_ignores:
        report.findings = [
            dataclasses.replace(f, severity="error")
            if f.rule == "SUPP001" else f
            for f in report.findings
        ]

    report.sort()

    if args.write_baseline:
        baseline_path = args.baseline or DEFAULT_BASELINE
        entries = write_baseline(baseline_path, report.findings)
        print(
            f"wrote {baseline_path}: {entries} fingerprint(s) covering "
            f"{len(report.errors)} error finding(s)"
        )
        return 0

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE
    if baseline_path and not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        report.findings, report.grandfathered = apply_baseline(
            report.findings, baseline
        )

    if args.json:
        print(report.to_json())
    else:
        for finding in report.findings:
            print(finding.render())
        print(report.summary())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simcheck",
        description="static determinism/unit lints + protocol-table checks",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
