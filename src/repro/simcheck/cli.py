"""``python -m repro lint`` — the simcheck driver.

Exit codes: ``0`` clean (info notes allowed), ``1`` at least one error
finding survived suppressions and the baseline, ``2`` usage or
environment problems (unknown scope, unreadable baseline, bad path).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import rules as _rules  # noqa: F401  (import populates the registry)
from .baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .engine import (
    LintEngine,
    SCOPES,
    all_rules,
    iter_python_files,
    relativize,
)
from .findings import LintReport
from .protocol import PROTOCOL_MODULES, analyze_repo_tables


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--scope", action="append", choices=SCOPES, default=None,
        dest="scopes", metavar="SCOPE",
        help="lint this scope; repeatable (default: src only — "
             "benchmarks/ and tests/ are opt-in)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable report on stdout",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file of grandfathered findings "
             f"(default: {DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report all findings",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="snapshot current error findings as the new baseline and exit",
    )
    parser.add_argument(
        "--no-protocol", action="store_true",
        help="skip the protocol-table analyzer",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )


def _list_rules() -> int:
    for rule in all_rules():
        scopes = ",".join(rule.scopes)
        print(f"{rule.id:<9} [{scopes}] {rule.title}")
    print(f"{'PROTO001':<9} [tables] unhandled (state, event) pair")
    print(f"{'PROTO002':<9} [tables] ambiguous transitions for one stimulus")
    print(f"{'PROTO003':<9} [tables] emitted/awaited message without peer")
    print(f"{'PROTO004':<9} [tables] static wait-for cycle (deadlock)")
    print(f"{'PROTO005':<9} [tables] unknown state/event/role in a row")
    print(f"{'PROTO006':<9} [tables] note: message types never referenced")
    return 0


def run_lint(args) -> int:
    if args.list_rules:
        return _list_rules()

    root = os.getcwd()
    scopes = tuple(args.scopes) if args.scopes else ("src",)
    for path in args.paths:
        if not os.path.exists(path):
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2

    engine = LintEngine(scopes=scopes, root=root)
    result = engine.run(args.paths)

    report = LintReport(
        findings=list(result.findings),
        suppressed=result.suppressed,
        files_checked=result.files_checked,
    )

    # The protocol pass fires only when the run actually covers the
    # modules that define the tables (so `lint benchmarks/` stays fast).
    if not args.no_protocol:
        linted = {
            relativize(path, root)
            for path in iter_python_files(args.paths)
        }
        wanted = [rel for rel in PROTOCOL_MODULES if rel in linted]
        if wanted:
            table_findings, checked = analyze_repo_tables(root, wanted)
            report.findings.extend(table_findings)
            report.tables_checked = len(checked)

    report.sort()

    if args.write_baseline:
        baseline_path = args.baseline or DEFAULT_BASELINE
        entries = write_baseline(baseline_path, report.findings)
        print(
            f"wrote {baseline_path}: {entries} fingerprint(s) covering "
            f"{len(report.errors)} error finding(s)"
        )
        return 0

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE
    if baseline_path and not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        report.findings, report.grandfathered = apply_baseline(
            report.findings, baseline
        )

    if args.json:
        print(report.to_json())
    else:
        for finding in report.findings:
            print(finding.render())
        print(report.summary())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simcheck",
        description="static determinism/unit lints + protocol-table checks",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
