"""Finding records shared by the AST lint engine and the protocol analyzer.

A finding pins a rule violation to a file and line.  Findings carry a
*fingerprint* — stable under unrelated edits (it hashes the offending
line's text, not its number) — which is what the committed baseline file
stores so the CI job fails only on regressions, never on grandfathered
debt.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Severities, in increasing order of consequence.  ``info`` findings are
#: advisory (printed, never fail the run); ``error`` findings fail it.
SEVERITIES = ("info", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific location."""

    rule: str
    path: str  # repo-relative, '/'-separated
    line: int
    message: str
    severity: str = "error"
    col: int = 0
    line_text: str = ""  # stripped source of the offending line

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def fingerprint(self) -> str:
        """Stable identity for the baseline: rule + file + line content.

        Line *numbers* are deliberately excluded so unrelated edits above
        a grandfathered finding do not resurrect it.
        """
        basis = self.line_text.strip() or f"#L{self.line}:{self.message}"
        digest = hashlib.sha1(basis.encode("utf-8")).hexdigest()[:12]
        return f"{self.rule}::{self.path}::{digest}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }


@dataclass
class LintReport:
    """Everything one lint run produced, post-baseline."""

    findings: List[Finding] = field(default_factory=list)
    grandfathered: int = 0  # baseline-suppressed findings
    suppressed: int = 0  # comment-suppressed findings
    files_checked: int = 0
    tables_checked: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def infos(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "info"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def sort(self) -> None:
        self.findings.sort(
            key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "tables_checked": self.tables_checked,
                "grandfathered": self.grandfathered,
                "suppressed": self.suppressed,
                "errors": len(self.errors),
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )

    def summary(self) -> str:
        parts = [
            f"{self.files_checked} files",
            f"{self.tables_checked} protocol tables",
            f"{len(self.errors)} error(s)",
            f"{len(self.infos)} note(s)",
        ]
        if self.grandfathered:
            parts.append(f"{self.grandfathered} baselined")
        if self.suppressed:
            parts.append(f"{self.suppressed} suppressed")
        return "simcheck: " + ", ".join(parts)


def source_line(lines: List[str], lineno: int) -> str:
    """The 1-indexed line's text, or '' when out of range."""
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1]
    return ""


def finding_for_node(
    rule: str,
    ctx,
    node,
    message: str,
    severity: str = "error",
) -> Finding:
    """Build a finding anchored at an AST node of ``ctx``'s file."""
    lineno = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    return Finding(
        rule=rule,
        path=ctx.relpath,
        line=lineno,
        col=col,
        message=message,
        severity=severity,
        line_text=source_line(ctx.lines, lineno),
    )
