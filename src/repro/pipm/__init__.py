"""PIPM core: remapping tables, majority-vote policy, migration engine."""

from .remap_global import GlobalRemapEntry, GlobalRemapTable
from .remap_local import LocalRemapEntry, LocalRemapTable
from .remap_cache import RemapCache
from .majority_vote import MajorityVote, VoteDecision
from .engine import PipmEngine

__all__ = [
    "GlobalRemapEntry",
    "GlobalRemapTable",
    "LocalRemapEntry",
    "LocalRemapTable",
    "RemapCache",
    "MajorityVote",
    "VoteDecision",
    "PipmEngine",
]
