"""Global remapping table (Section 4.2, Fig. 7).

Lives in CXL memory; one entry per CXL-DSM page.  Each entry packs a 5-bit
*current host ID* (which host, if any, the page is partially migrated to),
a 5-bit *candidate host ID*, and a 6-bit *global counter* — 2 bytes total,
0.05% of CXL-DSM capacity (Section 4.4).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .. import units
from ..config import PipmConfig

#: "no host" encoding for the 5-bit host-id fields.
NO_HOST = -1


class GlobalRemapEntry:
    """Metadata for one CXL-DSM page."""

    __slots__ = ("current_host", "candidate_host", "counter")

    def __init__(self) -> None:
        self.current_host = NO_HOST
        self.candidate_host = NO_HOST
        self.counter = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GlobalRemapEntry(current={self.current_host}, "
            f"candidate={self.candidate_host}, counter={self.counter})"
        )


class GlobalRemapTable:
    """The in-CXL-memory table backing the global remapping cache.

    Entries are created lazily (a page with no recorded accesses behaves as
    an all-zeros entry), which models the table being a flat array over the
    CXL-DSM page range without materializing millions of Python objects.
    """

    def __init__(self, config: PipmConfig, cxl_capacity_bytes: int) -> None:
        self.config = config
        self.num_pages = cxl_capacity_bytes // units.PAGE_SIZE
        self._entries: Dict[int, GlobalRemapEntry] = {}

    def entry(self, page: int) -> GlobalRemapEntry:
        """The (lazily materialized) entry for ``page``."""
        self._check(page)
        entry = self._entries.get(page)
        if entry is None:
            entry = GlobalRemapEntry()
            self._entries[page] = entry
        return entry

    def peek(self, page: int) -> Optional[GlobalRemapEntry]:
        """The entry if it was ever touched, else ``None`` (all-zeros)."""
        self._check(page)
        return self._entries.get(page)

    def current_host(self, page: int) -> int:
        entry = self._entries.get(page)
        return entry.current_host if entry is not None else NO_HOST

    def discard(self, page: int) -> None:
        """Drop a lazily materialized entry (rollback to the all-zeros state)."""
        self._check(page)
        self._entries.pop(page, None)

    def _check(self, page: int) -> None:
        if page < 0 or page >= self.num_pages:
            raise ValueError(
                f"page {page} outside CXL-DSM range [0, {self.num_pages})"
            )

    # -- space accounting (Section 4.4) ---------------------------------
    @property
    def size_bytes(self) -> int:
        """Full flat-table footprint in CXL memory."""
        return self.num_pages * self.config.global_entry_bytes

    @property
    def overhead_fraction(self) -> float:
        """Table bytes per byte of CXL-DSM (the paper's 0.05%)."""
        return self.config.global_entry_bytes / units.PAGE_SIZE

    def migrated_pages(self) -> Iterator[Tuple[int, GlobalRemapEntry]]:
        for page, entry in self._entries.items():
            if entry.current_host != NO_HOST:
                yield page, entry

    def items(self) -> Iterator[Tuple[int, GlobalRemapEntry]]:
        """Every lazily materialized ``(page, entry)`` pair."""
        return iter(self._entries.items())

    def touched_entries(self) -> int:
        return len(self._entries)
