"""Per-host local remapping table (Sections 4.2 and 4.4).

Tracks only the pages partially migrated to *this* host.  Each entry packs
a 28-bit local PFN (indexing up to 1 TB of local DRAM) and a 4-bit local
access counter — 4 bytes.  The table is organized as a two-level radix
table: a fixed root (32 MB in the paper, indexing up to 4M leaf pages) and
on-demand leaf pages of 1K entries, so its DRAM footprint is
``root + 4B/4KB x RSS`` (about 0.1% of the resident set).

Beyond the entry data, the table records per-line migrated bits for the
page (the in-memory bits of Section 4.3.2 live with the data lines; we keep
them here for O(1) bookkeeping — the *timing* of bit accesses is charged by
the system model along with the data access they accompany).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .. import units
from ..config import PipmConfig

#: Entries per radix leaf page (1K entries of 4B in a 4KB page).
LEAF_ENTRIES = 1024


class LocalRemapEntry:
    """One partially migrated page resident on this host.

    ``migrated_count`` mirrors ``bin(migrated_lines).count('1')`` and the
    owning table mirrors the sum over its entries, both maintained
    incrementally: the per-eviction peak-footprint tracking reads the
    table total on every incremental migration, and recounting bits
    across every entry there dominated whole-simulation runtime.  Mutate
    the mask only through :meth:`set_line` / :meth:`clear_line` /
    :meth:`assign_lines` so the mirrors stay exact.
    """

    __slots__ = ("page", "local_pfn", "counter", "migrated_lines",
                 "migrated_count", "table")

    def __init__(self, page: int, local_pfn: int, counter: int) -> None:
        self.page = page
        self.local_pfn = local_pfn
        self.counter = counter
        # Bitmask over the 64 lines of the page: 1 = line lives in local DRAM.
        self.migrated_lines = 0
        self.migrated_count = 0
        self.table: Optional["LocalRemapTable"] = None

    def line_migrated(self, line_in_page: int) -> bool:
        return bool(self.migrated_lines >> line_in_page & 1)

    def set_line(self, line_in_page: int) -> None:
        bit = 1 << line_in_page
        if not self.migrated_lines & bit:
            self.migrated_lines |= bit
            self.migrated_count += 1
            if self.table is not None:
                self.table._migrated_total += 1

    def clear_line(self, line_in_page: int) -> None:
        bit = 1 << line_in_page
        if self.migrated_lines & bit:
            self.migrated_lines &= ~bit
            self.migrated_count -= 1
            if self.table is not None:
                self.table._migrated_total -= 1

    def assign_lines(self, migrated_lines: int) -> None:
        """Replace the whole mask at once (snapshot-rollback path)."""
        delta = bin(migrated_lines).count("1") - self.migrated_count
        self.migrated_lines = migrated_lines
        self.migrated_count += delta
        if self.table is not None:
            self.table._migrated_total += delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalRemapEntry(page={self.page:#x}, pfn={self.local_pfn}, "
            f"counter={self.counter}, lines={self.migrated_count})"
        )


class LocalRemapTable:
    """Two-level radix table of a host's partially migrated pages."""

    def __init__(self, config: PipmConfig, host_id: int) -> None:
        self.config = config
        self.host_id = host_id
        self._entries: Dict[int, LocalRemapEntry] = {}
        self._leaves_touched: set = set()
        self._migrated_total = 0

    # -- operations -----------------------------------------------------
    def lookup(self, page: int) -> Optional[LocalRemapEntry]:
        return self._entries.get(page)

    def insert(self, page: int, local_pfn: int) -> LocalRemapEntry:
        if page in self._entries:
            raise ValueError(f"page {page:#x} already partially migrated here")
        max_pfn = 1 << self.config.local_pfn_bits
        if not 0 <= local_pfn < max_pfn:
            raise ValueError(
                f"local pfn {local_pfn} does not fit in "
                f"{self.config.local_pfn_bits} bits"
            )
        entry = LocalRemapEntry(
            page, local_pfn, counter=self.config.migration_threshold
        )
        self._entries[page] = entry
        self._leaves_touched.add(page // LEAF_ENTRIES)
        entry.table = self
        return entry

    def restore(
        self, page: int, local_pfn: int, counter: int, migrated_lines: int
    ) -> LocalRemapEntry:
        """Raw reinsert of a snapshotted entry, bit-for-bit (rollback path).

        Unlike :meth:`insert`, does not reset the counter and restores the
        migrated-line bitmask exactly as captured.
        """
        if page in self._entries:
            raise ValueError(f"page {page:#x} already partially migrated here")
        entry = LocalRemapEntry(page, local_pfn, counter=counter)
        entry.assign_lines(migrated_lines)
        self._entries[page] = entry
        self._leaves_touched.add(page // LEAF_ENTRIES)
        entry.table = self
        self._migrated_total += entry.migrated_count
        return entry

    def remove(self, page: int) -> LocalRemapEntry:
        entry = self._entries.pop(page, None)
        if entry is None:
            raise KeyError(f"page {page:#x} has no local remap entry")
        entry.table = None
        self._migrated_total -= entry.migrated_count
        return entry

    def __contains__(self, page: int) -> bool:
        return page in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Iterator[LocalRemapEntry]:
        return iter(self._entries.values())

    # -- walk cost ------------------------------------------------------
    @property
    def walk_accesses(self) -> int:
        """DRAM accesses for a table walk on a remap-cache miss (2 levels)."""
        return 2

    # -- space accounting (Section 4.4) -----------------------------------
    def size_bytes(self, resident_pages: int) -> int:
        """Root + leaf footprint for ``resident_pages`` of RSS."""
        leaves = len(self._leaves_touched) * units.PAGE_SIZE
        return self.config.radix_root_bytes + max(
            leaves, resident_pages * self.config.local_entry_bytes
        )

    def overhead_fraction(self, resident_bytes: int) -> float:
        if resident_bytes <= 0:
            return 0.0
        dynamic = resident_bytes // units.PAGE_SIZE * self.config.local_entry_bytes
        return dynamic / resident_bytes

    # -- aggregate stats -----------------------------------------------------
    def migrated_line_total(self) -> int:
        return self._migrated_total

    def page_footprint_bytes(self) -> int:
        """Local DRAM committed at page granularity (PIPM-page, Fig. 13)."""
        return len(self._entries) * units.PAGE_SIZE

    def line_footprint_bytes(self) -> int:
        """Local DRAM actually filled by migrated lines (PIPM-line, Fig. 13)."""
        return self.migrated_line_total() * units.CACHE_LINE
