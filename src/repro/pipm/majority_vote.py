"""PIPM majority-vote migration policy (Section 4.2).

A hardware Boyer-Moore majority vote per CXL-DSM page:

* the **global counter** (6-bit, saturating) increments when the candidate
  host accesses the page and decrements otherwise; when it hits zero the
  *next* accessor becomes the candidate; when it reaches the migration
  threshold, partial migration to the candidate is initiated,
* the **local counter** (4-bit, saturating) counts local accesses to a
  partially migrated page and is decremented by inter-host accesses; at
  zero the partial migration is revoked.

The vote only *identifies* pages and hosts — no data moves here.  The
engine (and the OS-skew baseline) act on the returned decisions.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import Optional

from ..config import PipmConfig
from .remap_global import NO_HOST, GlobalRemapEntry
from .remap_local import LocalRemapEntry


class VoteDecision(Enum):
    """Outcome of a counter update."""

    NONE = auto()
    PROMOTE = auto()  # initiate partial migration to the candidate host
    REVOKE = auto()  # revoke partial migration of this page


class MajorityVote:
    """Counter-update rules shared by PIPM and the OS-skew baseline."""

    def __init__(self, config: PipmConfig) -> None:
        self.config = config
        self.threshold = config.migration_threshold
        self._global_max = config.global_counter_max
        self._local_max = config.local_counter_max
        if self.threshold < 1:
            raise ValueError("migration threshold must be >= 1")

    # -- global counter (at the CXL memory node) -------------------------
    def on_cxl_access(self, entry: GlobalRemapEntry, host: int) -> VoteDecision:
        """Update the global counter for an access to a non-migrated page.

        Returns ``PROMOTE`` exactly when the counter crosses the threshold
        for the candidate host (step 2 of Fig. 7); callers decide whether a
        local frame is actually available.
        """
        if entry.current_host != NO_HOST:
            raise ValueError(
                "global vote applies only to pages not currently migrated"
            )
        if entry.candidate_host == NO_HOST or entry.counter == 0:
            # Step 1 of Fig. 7: the next accessor claims candidacy.
            entry.candidate_host = host
            entry.counter = 1
            return VoteDecision.NONE
        if entry.candidate_host == host:
            if entry.counter < self._global_max:
                entry.counter += 1
            if entry.counter >= self.threshold:
                return VoteDecision.PROMOTE
            return VoteDecision.NONE
        entry.counter -= 1
        return VoteDecision.NONE

    def promote(self, entry: GlobalRemapEntry) -> int:
        """Commit a promotion: returns the destination host id."""
        host = entry.candidate_host
        if host == NO_HOST:
            raise ValueError("promotion with no candidate host")
        entry.current_host = host
        entry.counter = 0
        entry.candidate_host = NO_HOST
        return host

    # -- local counter (in the host's local remapping table) ---------------
    def on_local_access(self, entry: LocalRemapEntry) -> None:
        """Step 4 of Fig. 7: local accesses bypass the global counter."""
        if entry.counter < self._local_max:
            entry.counter += 1

    def on_inter_host_access(self, entry: LocalRemapEntry) -> VoteDecision:
        """Step 5 of Fig. 7: inter-host accesses decrement the local counter."""
        if entry.counter > 0:
            entry.counter -= 1
        if entry.counter == 0:
            return VoteDecision.REVOKE
        return VoteDecision.NONE

    def revoke(self, entry: GlobalRemapEntry) -> None:
        """Step 6 of Fig. 7: reset the page's global state after revocation."""
        entry.current_host = NO_HOST
        entry.candidate_host = NO_HOST
        entry.counter = 0
