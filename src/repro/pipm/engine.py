"""PIPM engine: remapping tables + majority vote + incremental migration.

This is the *functional* heart of PIPM used by the timing simulator: it owns
the global remapping table/cache on the CXL device, each host's local
remapping table/cache and local frame allocator, and applies the
majority-vote policy.  It never computes latencies — the system model
charges those using the cache-hit booleans this engine returns.

The same engine, constructed with ``static_map=True``, provides the
HW-static baseline (Intel-Flat-Mode-like): CXL-DSM pages are uniformly
partitioned across hosts, every page implicitly owns a local frame on its
static host, and no vote ever runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import units
from ..config import PipmConfig
from ..mem.address import FrameAllocator
from .majority_vote import MajorityVote, VoteDecision
from .remap_cache import InfiniteRemapCache, RemapCache
from .remap_global import NO_HOST, GlobalRemapTable
from .remap_local import LocalRemapEntry, LocalRemapTable


@dataclass
class PipmCounters:
    """Event counts the evaluation reports on."""

    promotions: int = 0
    promotions_denied: int = 0  # no free local frame
    revocations: int = 0
    incremental_migrations: int = 0  # lines moved CXL -> local on eviction
    migrate_backs: int = 0  # lines moved local -> CXL on inter-host access
    revoked_lines: int = 0  # lines bulk-moved back on revocation
    peak_pages: Dict[int, int] = field(default_factory=dict)
    peak_lines: Dict[int, int] = field(default_factory=dict)


@dataclass
class PageMigrationTxn:
    """Pre-migration snapshot of every structure a migration step mutates.

    Captured by :meth:`PipmEngine.begin_txn` before an inter-host
    migrate-back/revocation sequence; :meth:`PipmEngine.rollback` restores
    the global entry, the owner's local entry, the owner's frame allocator
    and remap cache, and the event counters to this snapshot bit-for-bit.
    """

    owner: int
    page: int
    #: (current_host, candidate_host, counter) or None if never materialized.
    global_entry: Optional[Tuple[int, int, int]]
    #: (local_pfn, counter, migrated_lines) or None if not resident.
    local_entry: Optional[Tuple[int, int, int]]
    cache_resident: bool
    #: (migrate_backs, revocations, revoked_lines, incremental_migrations)
    counters: Tuple[int, int, int, int]


class PipmEngine:
    """All PIPM migration state for one multi-host system."""

    def __init__(
        self,
        config: PipmConfig,
        num_hosts: int,
        cxl_capacity_bytes: int,
        frames_per_host: int,
        static_map: bool = False,
        infinite_global_cache: bool = False,
        infinite_local_cache: bool = False,
    ) -> None:
        self.config = config
        self.num_hosts = num_hosts
        self.static_map = static_map
        self.vote = MajorityVote(config)
        self.global_table = GlobalRemapTable(config, cxl_capacity_bytes)
        if infinite_global_cache:
            self.global_cache: RemapCache = InfiniteRemapCache(
                config.global_remap_cache_latency_ns, name="global-remap-inf"
            )
        else:
            self.global_cache = RemapCache(
                config.global_remap_cache_bytes,
                config.global_entry_bytes,
                config.global_remap_cache_ways,
                config.global_remap_cache_latency_ns,
                name="global-remap",
            )
        self.local_tables = [
            LocalRemapTable(config, host) for host in range(num_hosts)
        ]
        if infinite_local_cache:
            self.local_caches: List[RemapCache] = [
                InfiniteRemapCache(
                    config.local_remap_cache_latency_ns,
                    name=f"local-remap-inf{h}",
                )
                for h in range(num_hosts)
            ]
        else:
            self.local_caches = [
                RemapCache(
                    config.local_remap_cache_bytes,
                    config.local_entry_bytes,
                    config.local_remap_cache_ways,
                    config.local_remap_cache_latency_ns,
                    name=f"local-remap{h}",
                )
                for h in range(num_hosts)
            ]
        self.frames = [FrameAllocator(frames_per_host) for _ in range(num_hosts)]
        self.counters = PipmCounters()
        # Software interface (paper Section 6): applications may disable
        # migration for pages with known-contested semantics, or explicitly
        # request partial migration of pages they know to be host-affine.
        self._pinned_cxl: set = set()

    # -- host-side lookups (on every shared-data LLC miss) ----------------
    def local_lookup(
        self, host: int, page: int
    ) -> Tuple[Optional[LocalRemapEntry], bool]:
        """The host's local remap entry for ``page`` and cache-hit flag.

        HW-static materializes entries lazily for pages statically homed at
        ``host``.
        """
        cache_hit = self.local_caches[host].probe(page)
        table = self.local_tables[host]
        entry = table.lookup(page)
        if entry is None and self.static_map and self.static_home(page) == host:
            pfn = self.frames[host].alloc()
            if pfn is not None:
                entry = table.insert(page, pfn)
        if not cache_hit:
            # Negative results are cached too: the remapping cache resolves
            # I vs I' for *every* shared page (Section 4.3.3), so pages with
            # no entry must not re-walk the radix table on every miss.
            self.local_caches[host].install(page)
        return entry, cache_hit

    def static_home(self, page: int) -> int:
        """HW-static's fixed uniform partition of the CXL-DSM page range."""
        return page % self.num_hosts

    # -- device-side vote (on CXL accesses to non-migrated pages) -----------
    def device_lookup(self, page: int) -> bool:
        """Probe the global remapping cache; returns the hit flag."""
        hit = self.global_cache.probe(page)
        if not hit:
            self.global_cache.install(page)
        return hit

    def record_cxl_access(self, page: int, host: int) -> Optional[int]:
        """Run the majority vote for a CXL access; maybe start a migration.

        Returns the destination host when partial migration is initiated
        (step 3 of Fig. 7), else ``None``.  HW-static never votes.
        """
        if self.static_map or page in self._pinned_cxl:
            return None
        entry = self.global_table.entry(page)
        if entry.current_host != NO_HOST:
            return None
        decision = self.vote.on_cxl_access(entry, host)
        if decision is not VoteDecision.PROMOTE:
            return None
        dest = entry.candidate_host
        pfn = self.frames[dest].alloc()
        if pfn is None:
            self.counters.promotions_denied += 1
            # Leave the counter saturated; a frame may free up later.
            return None
        self.vote.promote(entry)
        self.local_tables[dest].insert(page, pfn)
        self.local_caches[dest].install(page)
        self.counters.promotions += 1
        self._track_peaks(dest)
        return dest

    # -- data movement hooks --------------------------------------------
    def incremental_migrate(
        self, host: int, entry: LocalRemapEntry, line_in_page: int
    ) -> bool:
        """Case 1/4 of Fig. 9: an evicted line lands in local DRAM.

        Returns True if this flip newly migrated the line (case 1) rather
        than refreshing an already-migrated one (case 4).
        """
        fresh = not entry.line_migrated(line_in_page)
        if fresh:
            entry.set_line(line_in_page)
            self.counters.incremental_migrations += 1
            self._track_peaks(host)
        return fresh

    def record_local_access(self, entry: LocalRemapEntry) -> None:
        self.vote.on_local_access(entry)

    def inter_host_access(
        self, owner: int, page: int, line_in_page: int
    ) -> Tuple[bool, Optional[List[int]]]:
        """Cases 2/5/6 of Fig. 9 plus steps 5/6 of Fig. 7.

        An inter-host access to a partially migrated page migrates the
        touched line back to CXL memory and decrements the page's local
        counter.  Returns ``(line_was_migrated, revoked_lines)`` where
        ``revoked_lines`` lists line-in-page indexes that must be bulk
        written back because the whole partial migration was revoked.
        """
        table = self.local_tables[owner]
        entry = table.lookup(page)
        if entry is None:
            return False, None
        line_was_migrated = entry.line_migrated(line_in_page)
        if line_was_migrated:
            entry.clear_line(line_in_page)
            self.counters.migrate_backs += 1
        if self.static_map:
            # HW-static has no counters and never revokes the mapping.
            return line_was_migrated, None
        decision = self.vote.on_inter_host_access(entry)
        if decision is not VoteDecision.REVOKE:
            return line_was_migrated, None
        return line_was_migrated, self._revoke(owner, page, entry)

    def _revoke(
        self, owner: int, page: int, entry: LocalRemapEntry
    ) -> List[int]:
        """Step 6 of Fig. 7: tear down a partial migration."""
        lines = [
            i for i in range(units.LINES_PER_PAGE) if entry.line_migrated(i)
        ]
        self.local_tables[owner].remove(page)
        self.local_caches[owner].invalidate(page)
        self.frames[owner].free(entry.local_pfn)
        global_entry = self.global_table.entry(page)
        self.vote.revoke(global_entry)
        self.counters.revocations += 1
        self.counters.revoked_lines += len(lines)
        return lines

    # -- transactional migration (fault-injection support) -----------------
    def begin_txn(self, owner: int, page: int) -> PageMigrationTxn:
        """Snapshot everything an inter-host migration step may mutate."""
        global_entry = self.global_table.peek(page)
        global_snap = None
        if global_entry is not None:
            global_snap = (
                global_entry.current_host,
                global_entry.candidate_host,
                global_entry.counter,
            )
        local = self.local_tables[owner].lookup(page)
        local_snap = None
        if local is not None:
            local_snap = (local.local_pfn, local.counter, local.migrated_lines)
        counters = self.counters
        return PageMigrationTxn(
            owner=owner,
            page=page,
            global_entry=global_snap,
            local_entry=local_snap,
            cache_resident=self.local_caches[owner].contains(page),
            counters=(
                counters.migrate_backs,
                counters.revocations,
                counters.revoked_lines,
                counters.incremental_migrations,
            ),
        )

    def rollback(self, txn: PageMigrationTxn) -> None:
        """Restore the pre-migration snapshot captured by :meth:`begin_txn`."""
        owner, page = txn.owner, txn.page
        # Global remap entry.
        if txn.global_entry is None:
            self.global_table.discard(page)
        else:
            entry = self.global_table.entry(page)
            entry.current_host = txn.global_entry[0]
            entry.candidate_host = txn.global_entry[1]
            entry.counter = txn.global_entry[2]
        # Owner's local remap entry + frame allocator.
        table = self.local_tables[owner]
        current = table.lookup(page)
        if txn.local_entry is None:
            if current is not None:
                table.remove(page)
                self.local_caches[owner].invalidate(page)
                self.frames[owner].free(current.local_pfn)
        else:
            pfn, counter, migrated_lines = txn.local_entry
            if current is None:
                # The migration revoked the mapping; reclaim the exact frame
                # and reinsert the snapshotted entry bit-for-bit.
                self.frames[owner].reclaim(pfn)
                table.restore(page, pfn, counter, migrated_lines)
                if txn.cache_resident:
                    self.local_caches[owner].install(page)
            else:
                current.counter = counter
                current.assign_lines(migrated_lines)
        # Event counters.
        counters = self.counters
        (
            counters.migrate_backs,
            counters.revocations,
            counters.revoked_lines,
            counters.incremental_migrations,
        ) = txn.counters

    # -- software interface (Section 6 extension) -------------------------
    def pin_to_cxl(self, page: int) -> None:
        """Disable partial migration for ``page`` (program-semantics hint).

        If the page is currently partially migrated somewhere, the mapping
        is revoked so the pin takes effect immediately; callers in the
        timing model are responsible for charging the revocation transfer.
        """
        self._pinned_cxl.add(page)
        if not self.static_map:
            current = self.global_table.current_host(page)
            if current != NO_HOST:
                entry = self.local_tables[current].lookup(page)
                if entry is not None:
                    self._revoke(current, page, entry)

    def unpin(self, page: int) -> None:
        """Re-enable partial migration for ``page``."""
        self._pinned_cxl.discard(page)

    def migration_enabled(self, page: int) -> bool:
        return page not in self._pinned_cxl

    def request_partial_migration(self, page: int, host: int) -> bool:
        """Explicitly initiate partial migration (prefetch-style hint).

        Bypasses the vote but respects pins and the frame budget; data
        still moves incrementally through normal cache activity.  Returns
        True when the mapping was created.
        """
        if self.static_map or page in self._pinned_cxl:
            return False
        entry = self.global_table.entry(page)
        if entry.current_host != NO_HOST:
            return False
        pfn = self.frames[host].alloc()
        if pfn is None:
            self.counters.promotions_denied += 1
            return False
        entry.current_host = host
        entry.candidate_host = NO_HOST
        entry.counter = 0
        self.local_tables[host].insert(page, pfn)
        self.local_caches[host].install(page)
        self.counters.promotions += 1
        self._track_peaks(host)
        return True

    # -- footprint accounting (Fig. 13) -----------------------------------
    def _track_peaks(self, host: int) -> None:
        table = self.local_tables[host]
        pages = len(table)
        lines = table.migrated_line_total()
        peaks = self.counters.peak_pages
        if pages > peaks.get(host, 0):
            peaks[host] = pages
        peaks_l = self.counters.peak_lines
        if lines > peaks_l.get(host, 0):
            peaks_l[host] = lines

    def page_footprint_bytes(self, host: int) -> int:
        return self.local_tables[host].page_footprint_bytes()

    def line_footprint_bytes(self, host: int) -> int:
        return self.local_tables[host].line_footprint_bytes()

    def peak_page_footprint_bytes(self, host: int) -> int:
        return self.counters.peak_pages.get(host, 0) * units.PAGE_SIZE

    def peak_line_footprint_bytes(self, host: int) -> int:
        return self.counters.peak_lines.get(host, 0) * units.CACHE_LINE
