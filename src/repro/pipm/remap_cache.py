"""On-die remapping caches (Fig. 7, Table 2).

Two instances exist: a 16 KB global remapping cache on the CXL device and a
1 MB local remapping cache on each host's root complex.  Both are plain
set-associative caches over *page indexes*; a miss falls back to the backing
in-memory table and pays DRAM walk latency, which the system model charges.
"""

from __future__ import annotations

from typing import Optional

from ..cache.sa_cache import SetAssocCache


class RemapCache:
    """Set-associative cache of remapping-table entries, keyed by page."""

    def __init__(
        self,
        size_bytes: int,
        entry_bytes: int,
        ways: int,
        latency_ns: float,
        name: str = "remap-cache",
    ) -> None:
        entries = size_bytes // entry_bytes
        if entries < ways:
            raise ValueError(
                f"{name}: {size_bytes}B at {entry_bytes}B/entry yields fewer "
                f"entries than {ways} ways"
            )
        sets = entries // ways
        pow2_sets = 1 << (sets.bit_length() - 1)
        self._cache = SetAssocCache(pow2_sets, ways, name=name)
        self.latency_ns = latency_ns
        self.name = name

    def probe(self, page: int) -> bool:
        """True on a cache hit for ``page`` (and touches recency)."""
        return self._cache.lookup(page) is not None

    def contains(self, page: int) -> bool:
        """Presence check with no stats or recency side effects."""
        return self._cache.contains(page)

    def install(self, page: int) -> Optional[int]:
        """Install ``page``; returns an evicted page index, if any."""
        victim = self._cache.fill(page)
        return victim.line if victim is not None else None

    def invalidate(self, page: int) -> None:
        self._cache.invalidate(page)

    def flush(self) -> int:
        """Drop every cached entry (host crash / cold rejoin); entry count."""
        return len(self._cache.flush())

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    @property
    def hit_rate(self) -> float:
        return self._cache.hit_rate

    @property
    def capacity_entries(self) -> int:
        return self._cache.capacity

    def reset_stats(self) -> None:
        self._cache.reset_stats()


class InfiniteRemapCache(RemapCache):
    """An always-hit remap cache (the 'infinite' baseline of Figs. 16-17)."""

    def __init__(self, latency_ns: float, name: str = "remap-cache-inf") -> None:
        # Geometry is irrelevant; probe always hits.
        super().__init__(64 * 1024, 2, 8, latency_ns, name=name)
        self._probes = 0

    def probe(self, page: int) -> bool:
        self._probes += 1
        return True

    def contains(self, page: int) -> bool:
        return True

    def install(self, page: int) -> Optional[int]:
        return None

    @property
    def hits(self) -> int:
        return self._probes

    @property
    def misses(self) -> int:
        return 0

    @property
    def hit_rate(self) -> float:
        return 1.0
