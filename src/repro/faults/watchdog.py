"""Invariant watchdog: online consistency audits of the live system model.

The coherence model checker (:mod:`repro.coherence.checker`) proves the
*protocol* correct by exhaustive exploration; this watchdog audits the
*running system instance* — remapping tables vs. frame allocators vs. the
device directory vs. per-host caches — so a fault-injection run that
corrupts cluster state (e.g. a botched rollback) is caught at the audit
boundary rather than as silently wrong results.

Two modes, matching production practice:

* ``fail-fast`` — raise :class:`WatchdogError` on the first violation
  (CI / debugging),
* ``log`` — record violations and keep simulating (resilience studies
  measure how far a degraded system drifts).

Audits are pure reads: they charge no simulated time and mutate nothing,
so enabling the watchdog never perturbs timing results.
"""

from __future__ import annotations

from typing import List

from ..coherence.checker import Violation

#: Mirrors repro.pipm.remap_global.NO_HOST — imported by value, not by
#: module, to keep this package importable from the mem/link layer.
NO_HOST = -1


class WatchdogError(RuntimeError):
    """A fail-fast watchdog audit found an inconsistency."""

    def __init__(self, violations: List[Violation]) -> None:
        lines = "; ".join(f"[{v.kind}] {v.detail}" for v in violations[:5])
        super().__init__(
            f"invariant watchdog: {len(violations)} violation(s): {lines}"
        )
        self.violations = violations

    @property
    def kinds(self) -> List[str]:
        """Violation kinds in audit order — a stable failure signature.

        Soak-harness minimization compares these (not the free-text
        details, which embed addresses) to decide whether a shrunken
        schedule reproduces the *same* failure.
        """
        return [v.kind for v in self.violations]


class InvariantWatchdog:
    """Periodic + post-run consistency auditor for a MultiHostSystem."""

    def __init__(self, system, mode: str = "log",
                 period_ns: float = 0.0) -> None:
        if mode not in ("log", "fail-fast"):
            raise ValueError(f"unknown watchdog mode {mode!r}")
        self.system = system
        self.mode = mode
        self.period_ns = period_ns
        self._next_audit = period_ns if period_ns > 0 else float("inf")
        self.audits = 0
        self.violations: List[Violation] = []

    # -- scheduling ------------------------------------------------------
    def maybe_audit(self, now: float) -> None:
        """Run an audit if the periodic boundary passed (cheap otherwise)."""
        if now < self._next_audit:
            return
        while self._next_audit <= now:
            self._next_audit += self.period_ns
        self.audit(now)

    def audit(self, now: float = 0.0) -> List[Violation]:
        """One full consistency sweep; returns this audit's violations."""
        self.audits += 1
        found: List[Violation] = []
        self._audit_pipm(found)
        self._audit_page_map(found)
        self._audit_directory(found)
        self._audit_crash_domain(found)
        if found:
            self.violations.extend(found)
            if self.mode == "fail-fast":
                raise WatchdogError(found)
        return found

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "PASS" if self.ok else f"FAIL ({len(self.violations)})"
        return f"watchdog: {status} over {self.audits} audit(s)"

    # -- the invariants --------------------------------------------------
    def _audit_pipm(self, found: List[Violation]) -> None:
        engine = self.system.engine
        if engine is None:
            return
        num_hosts = engine.num_hosts
        line_mask_max = 1 << 64

        if not engine.static_map:
            # Global -> local: every globally migrated page has exactly one
            # local entry, on the host the global table names.
            for page, entry in engine.global_table.migrated_pages():
                host = entry.current_host
                if not 0 <= host < num_hosts:
                    found.append(Violation(
                        "remap", f"page {page:#x} migrated to bogus host "
                        f"{host}", ()))
                    continue
                if engine.local_tables[host].lookup(page) is None:
                    found.append(Violation(
                        "remap", f"page {page:#x} globally mapped to host "
                        f"{host} but missing from its local table", ()))
                for other in range(num_hosts):
                    if other != host and page in engine.local_tables[other]:
                        found.append(Violation(
                            "remap", f"page {page:#x} present in host "
                            f"{other}'s local table but globally mapped to "
                            f"{host}", ()))

        for host in range(num_hosts):
            table = engine.local_tables[host]
            seen_pfns = set()
            for entry in table.entries():
                # Local -> global back-pointer.
                if not engine.static_map:
                    current = engine.global_table.current_host(entry.page)
                    if current != host:
                        found.append(Violation(
                            "remap", f"host {host} local entry for page "
                            f"{entry.page:#x} but global table says "
                            f"{'unmapped' if current == NO_HOST else current}",
                            ()))
                if not 0 <= entry.migrated_lines < line_mask_max:
                    found.append(Violation(
                        "remap", f"host {host} page {entry.page:#x} has a "
                        f"corrupt migrated-line bitmask", ()))
                if entry.local_pfn in seen_pfns:
                    found.append(Violation(
                        "frames", f"host {host} pfn {entry.local_pfn} backs "
                        f"two partially migrated pages", ()))
                seen_pfns.add(entry.local_pfn)
            # One frame per resident entry, always.
            in_use = engine.frames[host].in_use
            if in_use != len(table):
                found.append(Violation(
                    "frames", f"host {host}: {in_use} frames in use vs "
                    f"{len(table)} local remap entries", ()))

    def _audit_page_map(self, found: List[Violation]) -> None:
        system = self.system
        if system._cost_model is None:  # not a kernel-migration scheme
            return
        num_hosts = system.config.num_hosts
        if set(system.page_map) != set(system._page_frames):
            found.append(Violation(
                "page-map", "page_map and frame bookkeeping disagree on the "
                "resident page set", ()))
        per_host = {h: 0 for h in range(num_hosts)}
        for page, host in system.page_map.items():
            if not 0 <= host < num_hosts:
                found.append(Violation(
                    "page-map", f"page {page:#x} mapped to bogus host "
                    f"{host}", ()))
                continue
            per_host[host] += 1
        for host, resident in per_host.items():
            in_use = system.frames[host].in_use
            if in_use != resident:
                found.append(Violation(
                    "frames", f"host {host}: {in_use} kernel frames in use "
                    f"vs {resident} resident pages", ()))

    def _audit_crash_domain(self, found: List[Violation]) -> None:
        """Post-recovery invariants: nothing references a crashed host.

        Only meaningful once a crash has been observed; recovery must have
        left zero directory lines, remap entries, frames, or resident pages
        naming the dead host.  A botched (sabotaged) recovery trips these.
        """
        system = self.system
        injector = getattr(system, "injector", None)
        if injector is None or not injector.crashed:
            return
        engine = system.engine
        for dead in sorted(injector.crashed):
            for entry in system.device_dir.entries():
                if entry.owner == dead:
                    found.append(Violation(
                        "crash-domain", f"line {entry.line:#x} still owned by "
                        f"crashed host {dead}", ()))
                elif dead in entry.sharers:
                    found.append(Violation(
                        "crash-domain", f"line {entry.line:#x} still tracks "
                        f"crashed host {dead} as a sharer", ()))
            if engine is not None:
                resident = len(engine.local_tables[dead])
                if resident:
                    found.append(Violation(
                        "crash-domain", f"crashed host {dead} still holds "
                        f"{resident} local remap entries", ()))
                in_use = engine.frames[dead].in_use
                if in_use:
                    found.append(Violation(
                        "crash-domain", f"crashed host {dead} still has "
                        f"{in_use} migration frames in use", ()))
                for page, gentry in engine.global_table.items():
                    if gentry.current_host == dead:
                        found.append(Violation(
                            "crash-domain", f"page {page:#x} globally mapped "
                            f"to crashed host {dead}", ()))
                    elif gentry.candidate_host == dead:
                        found.append(Violation(
                            "crash-domain", f"page {page:#x} names crashed "
                            f"host {dead} as migration candidate", ()))
            if system._cost_model is not None:
                for page, host in system.page_map.items():
                    if host == dead:
                        found.append(Violation(
                            "crash-domain", f"page {page:#x} still resident "
                            f"on crashed host {dead}", ()))

    def _audit_directory(self, found: List[Violation]) -> None:
        system = self.system
        num_hosts = system.config.num_hosts
        modified = 3  # sim.system._M
        for entry in system.device_dir.entries():
            bad = [s for s in entry.sharers if not 0 <= s < num_hosts]
            if bad:
                found.append(Violation(
                    "directory", f"line {entry.line:#x} tracks out-of-range "
                    f"sharers {bad}", ()))
            if entry.state == modified and not 0 <= entry.owner < num_hosts:
                found.append(Violation(
                    "directory", f"line {entry.line:#x} is Modified with no "
                    f"valid owner ({entry.owner})", ()))
