"""Deterministic fault plans: what misbehaves, where, and when.

A :class:`FaultPlan` expands the scalar knobs of
:class:`repro.config.FaultConfig` into concrete, seed-derived events laid
out against simulated time: per-link degradation windows, per-host stall
windows, and poisoned-line events.  Transient transfer errors stay
rate-based (drawn from per-link seeded RNG streams inside the injector) so
they scale with traffic instead of requiring a pre-materialized schedule.

Everything here is pure data; the :mod:`repro.faults.injector` turns a plan
into the runtime hooks the link/system/engine models consult.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import FaultConfig


@dataclass(frozen=True)
class LinkDegradeWindow:
    """One interval during which a host's CXL link runs degraded."""

    host: int
    start_ns: float
    end_ns: float
    latency_x: float = 1.0  # multiplies the one-way latency
    bandwidth_x: float = 1.0  # divides the per-direction bandwidth

    def active(self, now: float) -> bool:
        return self.start_ns <= now < self.end_ns


@dataclass(frozen=True)
class HostStallWindow:
    """One interval during which a host executes nothing (pause/OS stall)."""

    host: int
    start_ns: float
    duration_ns: float

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.duration_ns


@dataclass(frozen=True)
class PoisonEvent:
    """A cache line in CXL memory becomes poisoned at ``at_ns``."""

    at_ns: float
    line: int


@dataclass
class FaultPlan:
    """A fully materialized, reproducible fault schedule for one run."""

    config: FaultConfig
    num_hosts: int
    degrade_windows: Dict[int, List[LinkDegradeWindow]] = field(
        default_factory=dict
    )
    stall_windows: Dict[int, List[HostStallWindow]] = field(
        default_factory=dict
    )
    poison_events: List[PoisonEvent] = field(default_factory=list)

    @classmethod
    def from_config(
        cls, config: FaultConfig, num_hosts: int, num_lines: int
    ) -> "FaultPlan":
        """Expand scalar knobs into concrete seeded events.

        ``num_lines`` bounds the poisonable line range (the CXL-DSM pool).
        """
        config.validate()
        plan = cls(config=config, num_hosts=num_hosts)

        if config.has_degrade_window:
            hosts = config.degrade_hosts or tuple(range(num_hosts))
            for host in hosts:
                plan.degrade_windows[host] = [
                    LinkDegradeWindow(
                        host,
                        config.degrade_start_ns,
                        config.degrade_end_ns,
                        config.degrade_latency_x,
                        config.degrade_bandwidth_x,
                    )
                ]

        if config.has_stalls:
            # Stall windows repeat every period; materialization is lazy
            # (see stall_resume) because trace duration is unknown here.
            hosts = config.stall_hosts or tuple(range(num_hosts))
            for host in hosts:
                plan.stall_windows[host] = []  # marker: host stalls

        if config.has_poison and num_lines > 0:
            rng = random.Random(config.seed * 0x9E3779B1 + 1)
            plan.poison_events = sorted(
                (
                    PoisonEvent(
                        (k + 1) * config.poison_period_ns,
                        rng.randrange(num_lines),
                    )
                    for k in range(config.poison_count)
                ),
                key=lambda e: e.at_ns,
            )
        return plan

    # -- queries ---------------------------------------------------------
    @property
    def is_idle(self) -> bool:
        """No fault source can ever fire."""
        return (
            self.config.transfer_error_rate <= 0.0
            and not self.degrade_windows
            and not self.stall_windows
            and not self.poison_events
        )

    @property
    def can_disrupt_transfers(self) -> bool:
        """Transfers may fail or time out (migrations need transactions)."""
        return self.config.transfer_error_rate > 0.0 or bool(
            self.degrade_windows
        )

    @property
    def rollback_sabotage_budget(self) -> int:
        """Rollbacks to deliberately botch (chaos/soak testing only).

        Sabotage piggybacks on migration aborts, which only occur while a
        disruption source is active, so a nonzero budget on an otherwise
        idle plan never fires — ``is_idle`` deliberately ignores it.
        """
        return self.config.rollback_sabotage_count

    def windows_for(self, host: int) -> List[LinkDegradeWindow]:
        return self.degrade_windows.get(host, [])

    def stall_resume(self, host: int, now: float) -> Optional[float]:
        """If ``host`` is inside a stall window at ``now``, when it ends."""
        if host not in self.stall_windows:
            return None
        period = self.config.stall_period_ns
        start = (now // period) * period
        if start <= 0:
            return None  # no window before the first period boundary
        end = start + self.config.stall_duration_ns
        if start <= now < end:
            return end
        return None

    def next_stall_start(self, host: int, now: float) -> float:
        """The first stall-window start strictly after ``now`` (inf if none).

        A fence for batched execution: a host known to be outside any
        window at ``now`` stays outside one until this boundary, so a run
        of accesses whose clocks stay below it never needs the per-access
        ``stall_resume`` check.
        """
        if host not in self.stall_windows:
            return float("inf")
        period = self.config.stall_period_ns
        return (now // period + 1) * period
