"""Deterministic fault plans: what misbehaves, where, and when.

A :class:`FaultPlan` expands the scalar knobs of
:class:`repro.config.FaultConfig` into concrete, seed-derived events laid
out against simulated time: per-link degradation windows, per-host stall
windows, and poisoned-line events.  Transient transfer errors stay
rate-based (drawn from per-link seeded RNG streams inside the injector) so
they scale with traffic instead of requiring a pre-materialized schedule.

Everything here is pure data; the :mod:`repro.faults.injector` turns a plan
into the runtime hooks the link/system/engine models consult.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import FaultConfig


@dataclass(frozen=True)
class LinkDegradeWindow:
    """One interval during which a host's CXL link runs degraded."""

    host: int
    start_ns: float
    end_ns: float
    latency_x: float = 1.0  # multiplies the one-way latency
    bandwidth_x: float = 1.0  # divides the per-direction bandwidth

    def active(self, now: float) -> bool:
        return self.start_ns <= now < self.end_ns


@dataclass(frozen=True)
class HostStallWindow:
    """One interval during which a host executes nothing (pause/OS stall)."""

    host: int
    start_ns: float
    duration_ns: float

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.duration_ns


@dataclass(frozen=True)
class PoisonEvent:
    """A cache line in CXL memory becomes poisoned at ``at_ns``."""

    at_ns: float
    line: int


@dataclass(frozen=True)
class HostCrashEvent:
    """A host fail-stops at ``at_ns`` and optionally rejoins later.

    A crash is a *permanent* fault (contrast the self-healing stall /
    degrade / poison clauses): the dead host's protocol state — directory
    ownership, in-flight migration transactions, remap entries naming its
    DRAM — must be actively reclaimed by the survivors.  ``rejoin_ns`` of
    ``None`` means the host never comes back; otherwise it rejoins with
    cold caches and TLB at that epoch.
    """

    host: int
    at_ns: float
    rejoin_ns: Optional[float] = None


@dataclass
class FaultPlan:
    """A fully materialized, reproducible fault schedule for one run."""

    config: FaultConfig
    num_hosts: int
    degrade_windows: Dict[int, List[LinkDegradeWindow]] = field(
        default_factory=dict
    )
    stall_windows: Dict[int, List[HostStallWindow]] = field(
        default_factory=dict
    )
    poison_events: List[PoisonEvent] = field(default_factory=list)
    crash_events: List[HostCrashEvent] = field(default_factory=list)

    @classmethod
    def from_config(
        cls, config: FaultConfig, num_hosts: int, num_lines: int
    ) -> "FaultPlan":
        """Expand scalar knobs into concrete seeded events.

        ``num_lines`` bounds the poisonable line range (the CXL-DSM pool).
        """
        config.validate()
        plan = cls(config=config, num_hosts=num_hosts)

        if config.has_degrade_window:
            hosts = config.degrade_hosts or tuple(range(num_hosts))
            for host in hosts:
                plan.degrade_windows[host] = [
                    LinkDegradeWindow(
                        host,
                        config.degrade_start_ns,
                        config.degrade_end_ns,
                        config.degrade_latency_x,
                        config.degrade_bandwidth_x,
                    )
                ]

        if config.has_stalls:
            # Stall windows repeat every period; materialization is lazy
            # (see stall_resume) because trace duration is unknown here.
            hosts = config.stall_hosts or tuple(range(num_hosts))
            for host in hosts:
                plan.stall_windows[host] = []  # marker: host stalls

        if config.has_poison and num_lines > 0:
            rng = random.Random(config.seed * 0x9E3779B1 + 1)
            plan.poison_events = sorted(
                (
                    PoisonEvent(
                        (k + 1) * config.poison_period_ns,
                        rng.randrange(num_lines),
                    )
                    for k in range(config.poison_count)
                ),
                key=lambda e: e.at_ns,
            )

        if config.has_crash:
            plan.crash_events = [
                HostCrashEvent(
                    config.crash_host,
                    config.crash_at_ns,
                    config.crash_rejoin_ns or None,
                )
            ]

        plan.validate()
        return plan

    # -- validation ------------------------------------------------------
    def validate(self, horizon_ns: Optional[float] = None) -> None:
        """Reject malformed schedules instead of silently accepting them.

        Checks: every degrade window is non-empty (``end > start``) and no
        two windows on the same host overlap under the ``[start, end)``
        semantics of :meth:`LinkDegradeWindow.active`; periodic stall
        windows do not overlap their successors (``duration < period``);
        crash events name an in-range host and rejoin strictly after the
        crash.  With ``horizon_ns``, windows/events that begin at or past
        the horizon can never fire and are rejected as plan bugs.
        """
        for host, windows in sorted(self.degrade_windows.items()):
            ordered = sorted(windows, key=lambda w: w.start_ns)
            for window in ordered:
                if window.end_ns <= window.start_ns:
                    raise ValueError(
                        f"host {host}: empty degrade window "
                        f"[{window.start_ns:g}, {window.end_ns:g})"
                    )
                if horizon_ns is not None and window.start_ns >= horizon_ns:
                    raise ValueError(
                        f"host {host}: degrade window starts at "
                        f"{window.start_ns:g}ns, beyond the "
                        f"{horizon_ns:g}ns horizon"
                    )
            for prev, nxt in zip(ordered, ordered[1:]):
                if nxt.start_ns < prev.end_ns:
                    raise ValueError(
                        f"host {host}: degrade windows overlap "
                        f"([{prev.start_ns:g}, {prev.end_ns:g}) and "
                        f"[{nxt.start_ns:g}, {nxt.end_ns:g}))"
                    )
        if self.stall_windows:
            period = self.config.stall_period_ns
            duration = self.config.stall_duration_ns
            if duration >= period:
                raise ValueError(
                    f"stall duration {duration:g}ns >= period {period:g}ns: "
                    f"periodic windows would overlap"
                )
            if horizon_ns is not None and period >= horizon_ns:
                raise ValueError(
                    f"first stall window starts at {period:g}ns, beyond "
                    f"the {horizon_ns:g}ns horizon"
                )
        for event in self.crash_events:
            if not 0 <= event.host < self.num_hosts:
                raise ValueError(
                    f"crash names host {event.host}, plan has "
                    f"{self.num_hosts} hosts"
                )
            if event.rejoin_ns is not None and event.rejoin_ns <= event.at_ns:
                raise ValueError(
                    f"host {event.host}: rejoin at {event.rejoin_ns:g}ns "
                    f"is not after the crash at {event.at_ns:g}ns"
                )
            if horizon_ns is not None and event.at_ns >= horizon_ns:
                raise ValueError(
                    f"host {event.host}: crash at {event.at_ns:g}ns, "
                    f"beyond the {horizon_ns:g}ns horizon"
                )

    # -- queries ---------------------------------------------------------
    @property
    def is_idle(self) -> bool:
        """No fault source can ever fire."""
        return (
            self.config.transfer_error_rate <= 0.0
            and not self.degrade_windows
            and not self.stall_windows
            and not self.poison_events
            and not self.crash_events
        )

    @property
    def can_disrupt_transfers(self) -> bool:
        """Transfers may fail or time out (migrations need transactions)."""
        return self.config.transfer_error_rate > 0.0 or bool(
            self.degrade_windows
        )

    @property
    def rollback_sabotage_budget(self) -> int:
        """Rollbacks to deliberately botch (chaos/soak testing only).

        Sabotage piggybacks on migration aborts and crash-recovery
        teardowns, which only occur while a disruption source is active,
        so a nonzero budget on an otherwise idle plan never fires —
        ``is_idle`` deliberately ignores it.
        """
        return self.config.rollback_sabotage_count

    def windows_for(self, host: int) -> List[LinkDegradeWindow]:
        return self.degrade_windows.get(host, [])

    def stall_resume(self, host: int, now: float) -> Optional[float]:
        """If ``host`` is inside a stall window at ``now``, when it ends."""
        if host not in self.stall_windows:
            return None
        period = self.config.stall_period_ns
        start = (now // period) * period
        if start <= 0:
            return None  # no window before the first period boundary
        end = start + self.config.stall_duration_ns
        if start <= now < end:
            return end
        return None

    def next_stall_start(self, host: int, now: float) -> float:
        """The first stall-window start strictly after ``now`` (inf if none).

        A fence for batched execution: a host known to be outside any
        window at ``now`` stays outside one until this boundary, so a run
        of accesses whose clocks stay below it never needs the per-access
        ``stall_resume`` check.
        """
        if host not in self.stall_windows:
            return float("inf")
        period = self.config.stall_period_ns
        return (now // period + 1) * period
