"""Message-level faults for the coherence protocol models.

The timing-layer injector perturbs *latencies*; this wrapper perturbs the
*protocol layer*: it wraps any coherence model (``BaseCxlDsmModel``,
``PipmModel``) and injects CRC-style delivery failures in front of
``apply``.  Because protocol transactions are atomic (the paper's locked
implementation), a failed delivery is retried and then applied whole — a
message-delay fault changes *when* a transaction lands, never *what* it
does.  Running the litmus suite and the model checker over the wrapped
model verifies exactly that: Sequential Consistency survives a lossy,
retrying fabric.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Tuple


class MessageFaultModel:
    """A protocol model whose message deliveries transiently fail.

    Drop-in wrapper: exposes the same surface the model checker and the
    litmus runner use, delegating everything to the inner model while
    drawing seeded delivery errors (each error = one retry) per ``apply``.
    """

    def __init__(
        self,
        inner,
        seed: int = 42,
        error_rate: float = 0.2,
        max_attempts: int = 4,
    ) -> None:
        if not 0.0 <= error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")
        self.inner = inner
        self.error_rate = error_rate
        self.max_attempts = max_attempts
        self.retries = 0
        self._rng = random.Random(seed)

    @property
    def name(self) -> str:
        return f"{self.inner.name}+msg-faults"

    # -- checker/litmus surface, delegated -------------------------------
    def initial_state(self):
        return self.inner.initial_state()

    def canonicalize(self, state):
        return self.inner.canonicalize(state)

    def enabled_actions(self, state):
        return self.inner.enabled_actions(state)

    def invariant_violations(self, state):
        return self.inner.invariant_violations(state)

    def apply(self, state, action) -> Tuple[Any, Dict]:
        # CRC retries delay delivery; the transaction still lands atomically.
        attempt = 1
        while attempt < self.max_attempts and (
            self._rng.random() < self.error_rate
        ):
            self.retries += 1
            attempt += 1
        return self.inner.apply(state, action)
