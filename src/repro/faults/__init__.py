"""Fault injection and resilience: deterministic link/host/memory faults.

The subsystem has four layers:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: seed-derived, concrete
  fault events against simulated time;
* :mod:`repro.faults.injector` — :class:`FaultInjector`: the runtime hooks
  links and the system model consult, plus :class:`FaultCounters`;
* :mod:`repro.faults.watchdog` — :class:`InvariantWatchdog`: online audits
  of remap-table / directory / frame consistency;
* :mod:`repro.faults.protocol` — :class:`MessageFaultModel`: message-level
  delivery faults for the coherence models (litmus under a lossy fabric).

Configuration rides on :class:`repro.config.FaultConfig` (the ``faults``
field of :class:`repro.config.SystemConfig`); ``FaultConfig.parse`` turns
CLI specs like ``degraded:seed=3`` into configs.
"""

from ..mem.cxl_link import LinkTransferError
from .injector import (
    FaultCounters,
    FaultInjector,
    LinkFaultModel,
)
from .plan import (
    FaultPlan,
    HostCrashEvent,
    HostStallWindow,
    LinkDegradeWindow,
    PoisonEvent,
)
from .protocol import MessageFaultModel
from .watchdog import InvariantWatchdog, WatchdogError

__all__ = [
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "HostCrashEvent",
    "HostStallWindow",
    "InvariantWatchdog",
    "LinkDegradeWindow",
    "LinkFaultModel",
    "LinkTransferError",
    "MessageFaultModel",
    "PoisonEvent",
    "WatchdogError",
]
