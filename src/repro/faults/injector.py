"""Runtime fault injection: the hooks the timing models consult.

The :class:`FaultInjector` owns one seeded RNG stream per link so error
draws are reproducible and independent of how other links behave.  Links
consult their :class:`LinkFaultModel` on every transfer; the system model
consults the injector for degraded-link gating, host stalls, and poisoned
lines; everything feeds one shared :class:`FaultCounters` record that the
simulation result reports from.

The zero-plan guarantee: when a fault source cannot fire, the
corresponding hook is ``None`` (links) or short-circuits on a cached
boolean (stalls/poison), so an all-zero plan leaves the simulated timing
bit-for-bit identical to a run with faults disabled.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set

from .plan import FaultPlan, LinkDegradeWindow


@dataclass
class FaultCounters:
    """Every fault/recovery event the resilience evaluation reports on."""

    injected_errors: int = 0  # transfer attempts that drew an error
    link_retries: int = 0  # failed attempts that were retried
    link_giveups: int = 0  # transfers that exhausted the retry budget
    migration_aborts: int = 0  # migrations abandoned mid-flight
    migration_timeouts: int = 0  # aborts caused by the transfer timeout
    rollbacks: int = 0  # remap-table snapshots restored
    degraded_skips: int = 0  # migration-policy work skipped on a degraded link
    sabotaged_rollbacks: int = 0  # rollbacks deliberately botched (chaos)
    host_stall_ns: float = 0.0  # simulated time lost to host pauses
    poison_recoveries: int = 0  # poisoned-line scrub-and-refetch events
    recovery_ns: float = 0.0  # latency charged to fault recovery


class LinkFaultModel:
    """Per-link fault state: error stream + degradation windows."""

    __slots__ = ("host", "error_rate", "max_attempts", "retry_backoff_ns",
                 "giveup_penalty_ns", "windows", "counters", "_rng")

    def __init__(
        self,
        host: int,
        plan: FaultPlan,
        counters: FaultCounters,
    ) -> None:
        config = plan.config
        self.host = host
        self.error_rate = config.transfer_error_rate
        self.max_attempts = config.max_attempts
        self.retry_backoff_ns = config.retry_backoff_ns
        self.giveup_penalty_ns = config.giveup_penalty_ns
        self.windows: List[LinkDegradeWindow] = plan.windows_for(host)
        self.counters = counters
        # One independent deterministic stream per link.
        self._rng = random.Random(config.seed * 0x9E3779B1 + host)

    def window_at(self, now: float) -> Optional[LinkDegradeWindow]:
        for window in self.windows:
            if window.active(now):
                return window
        return None

    def degraded(self, now: float) -> bool:
        return self.window_at(now) is not None

    def draw_error(self) -> bool:
        """One CRC-error draw.  Never called when the rate is zero."""
        if self._rng.random() < self.error_rate:
            self.counters.injected_errors += 1
            return True
        return False


class FaultInjector:
    """All runtime fault state for one simulation run."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.counters = FaultCounters()
        self._links: List[Optional[LinkFaultModel]] = [
            LinkFaultModel(host, plan, self.counters)
            if plan.config.transfer_error_rate > 0.0 or plan.windows_for(host)
            else None
            for host in range(plan.num_hosts)
        ]
        # -- host stalls -------------------------------------------------
        self.has_stalls = bool(plan.stall_windows)
        # -- poison ------------------------------------------------------
        self._poison_queue = list(plan.poison_events)  # sorted by at_ns
        self._poison_idx = 0
        self.poisoned: Set[int] = set()
        self.has_poison = bool(self._poison_queue)
        self.poison_penalty_ns = plan.config.poison_penalty_ns
        self.migration_timeout_ns = plan.config.migration_timeout_ns
        # -- deliberate corruption (chaos/soak testing) ------------------
        self._sabotage_remaining = plan.rollback_sabotage_budget

    # -- links -----------------------------------------------------------
    def link(self, host: int) -> Optional[LinkFaultModel]:
        """The per-link fault hook, or ``None`` when nothing can fire."""
        return self._links[host]

    def link_degraded(self, host: int, now: float) -> bool:
        model = self._links[host]
        return model is not None and model.degraded(now)

    @property
    def can_disrupt_transfers(self) -> bool:
        return self.plan.can_disrupt_transfers

    # -- host stalls ------------------------------------------------------
    def stall_resume(self, host: int, now: float) -> Optional[float]:
        """When the stall window covering ``now`` ends, if any."""
        return self.plan.stall_resume(host, now)

    def next_stall_start(self, host: int, now: float) -> float:
        """First stall-window start strictly after ``now`` (inf if none)."""
        return self.plan.next_stall_start(host, now)

    # -- poisoned lines ---------------------------------------------------
    @property
    def next_poison_ns(self) -> float:
        if self._poison_idx >= len(self._poison_queue):
            return float("inf")
        return self._poison_queue[self._poison_idx].at_ns

    def activate_poison(self, now: float) -> List[int]:
        """Lines whose poison events came due by ``now`` (consumed once)."""
        due: List[int] = []
        queue = self._poison_queue
        while self._poison_idx < len(queue) and (
            queue[self._poison_idx].at_ns <= now
        ):
            line = queue[self._poison_idx].line
            self._poison_idx += 1
            if line not in self.poisoned:
                self.poisoned.add(line)
                due.append(line)
        return due

    def clear_poison(self, line: int) -> None:
        self.poisoned.discard(line)
        self.counters.poison_recoveries += 1
        self.counters.recovery_ns += self.poison_penalty_ns

    # -- deliberate corruption (chaos/soak testing) -----------------------
    def consume_rollback_sabotage(self) -> bool:
        """True when the next migration rollback should be botched.

        Each call consumes one unit of the plan's sabotage budget; the
        caller corrupts the transaction before rolling back so the
        invariant watchdog has a real inconsistency to detect.
        """
        if self._sabotage_remaining <= 0:
            return False
        self._sabotage_remaining -= 1
        self.counters.sabotaged_rollbacks += 1
        return True
