"""Runtime fault injection: the hooks the timing models consult.

The :class:`FaultInjector` owns one seeded RNG stream per link so error
draws are reproducible and independent of how other links behave.  Links
consult their :class:`LinkFaultModel` on every transfer; the system model
consults the injector for degraded-link gating, host stalls, poisoned
lines, and host crashes; everything feeds one shared
:class:`FaultCounters` record that the simulation result reports from.

The zero-plan guarantee: when a fault source cannot fire, the
corresponding hook is ``None`` (links) or short-circuits on a cached
boolean (stalls/poison/crashes), so an all-zero plan leaves the simulated
timing bit-for-bit identical to a run with faults disabled.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .plan import FaultPlan, HostCrashEvent, LinkDegradeWindow

_INF = float("inf")


@dataclass
class FaultCounters:
    """Every fault/recovery event the resilience evaluation reports on."""

    injected_errors: int = 0  # transfer attempts that drew an error
    link_retries: int = 0  # failed attempts that were retried
    link_giveups: int = 0  # transfers that exhausted the retry budget
    migration_aborts: int = 0  # migrations abandoned mid-flight
    migration_timeouts: int = 0  # aborts caused by the transfer timeout
    rollbacks: int = 0  # remap-table snapshots restored
    degraded_skips: int = 0  # migration-policy work skipped on a degraded link
    sabotaged_rollbacks: int = 0  # rollbacks deliberately botched (chaos)
    host_stall_ns: float = 0.0  # simulated time lost to host pauses
    poison_recoveries: int = 0  # poisoned-line scrub-and-refetch events
    recovery_ns: float = 0.0  # latency charged to fault recovery
    # -- host crash / recovery -------------------------------------------
    host_crashes: int = 0  # hosts that fail-stopped
    host_rejoins: int = 0  # crashed hosts that came back (cold)
    crash_lost_updates: int = 0  # dirty state lost with a dead host
    crash_lines_reclaimed: int = 0  # directory entries repaired/removed
    crash_pages_reclaimed: int = 0  # remap/kernel pages torn down
    crash_txns_aborted: int = 0  # orphaned migration txns rolled back
    crash_dropped_accesses: int = 0  # dead host's unserved trace accesses
    crash_recovery_ns: float = 0.0  # total MTTR charged across recoveries
    crash_down_ns: float = 0.0  # host-ns of unavailability (finalize)
    governor_skips: int = 0  # promotions suppressed by the governor


class LinkFaultModel:
    """Per-link fault state: error stream + degradation windows."""

    __slots__ = ("host", "error_rate", "max_attempts", "retry_backoff_ns",
                 "giveup_penalty_ns", "windows", "counters", "_rng",
                 "_window_starts")

    def __init__(
        self,
        host: int,
        plan: FaultPlan,
        counters: FaultCounters,
    ) -> None:
        config = plan.config
        self.host = host
        self.error_rate = config.transfer_error_rate
        self.max_attempts = config.max_attempts
        self.retry_backoff_ns = config.retry_backoff_ns
        self.giveup_penalty_ns = config.giveup_penalty_ns
        # Windows are sorted (and validated non-overlapping) so membership
        # is a bisect over start times instead of a linear scan: the
        # candidate window is the last one starting at or before ``now``.
        self.windows: List[LinkDegradeWindow] = sorted(
            plan.windows_for(host), key=lambda w: w.start_ns
        )
        self._window_starts = [w.start_ns for w in self.windows]
        self.counters = counters
        # One independent deterministic stream per link.
        self._rng = random.Random(config.seed * 0x9E3779B1 + host)

    def window_at(self, now: float) -> Optional[LinkDegradeWindow]:
        idx = bisect_right(self._window_starts, now) - 1
        if idx < 0:
            return None
        window = self.windows[idx]
        return window if now < window.end_ns else None

    def degraded(self, now: float) -> bool:
        return self.window_at(now) is not None

    def draw_error(self) -> bool:
        """One CRC-error draw.  Never called when the rate is zero."""
        if self._rng.random() < self.error_rate:
            self.counters.injected_errors += 1
            return True
        return False


class FaultInjector:
    """All runtime fault state for one simulation run."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.counters = FaultCounters()
        self._links: List[Optional[LinkFaultModel]] = [
            LinkFaultModel(host, plan, self.counters)
            if plan.config.transfer_error_rate > 0.0 or plan.windows_for(host)
            else None
            for host in range(plan.num_hosts)
        ]
        # -- host stalls -------------------------------------------------
        self.has_stalls = bool(plan.stall_windows)
        self._stall_period = plan.config.stall_period_ns
        self._stall_duration = plan.config.stall_duration_ns
        self._stalls_host = [
            host in plan.stall_windows for host in range(plan.num_hosts)
        ]
        # Per-host cursor: the start of the next stall window this host
        # has not yet passed.  Hosts consult stalls at their own heap
        # turns, whose clocks are monotone per host, so the cursor only
        # ever advances (see stall_resume).
        self._stall_next_start = [
            self._stall_period if self._stalls_host[host] else _INF
            for host in range(plan.num_hosts)
        ]
        # -- poison ------------------------------------------------------
        self._poison_queue = list(plan.poison_events)  # sorted by at_ns
        self._poison_idx = 0
        self.poisoned: Set[int] = set()
        self.has_poison = bool(self._poison_queue)
        self.poison_penalty_ns = plan.config.poison_penalty_ns
        self.migration_timeout_ns = plan.config.migration_timeout_ns
        # -- host crashes ------------------------------------------------
        # One unified epoch schedule: crashes and rejoins, sorted by time,
        # consumed once through a cursor (like the poison queue).
        schedule: List[Tuple[float, int, bool]] = []
        for event in plan.crash_events:
            schedule.append((event.at_ns, event.host, False))
            if event.rejoin_ns is not None:
                schedule.append((event.rejoin_ns, event.host, True))
        schedule.sort()
        self._crash_schedule = schedule
        self._crash_idx = 0
        self.has_crashes = bool(schedule)
        self.crashed: Set[int] = set()
        self._rejoin_at: Dict[int, float] = {
            event.host: (event.rejoin_ns if event.rejoin_ns is not None
                         else _INF)
            for event in plan.crash_events
        }
        self.crash_detect_ns = plan.config.crash_detect_ns
        # -- migration governor ------------------------------------------
        self.governor_hold_ns = plan.config.governor_hold_ns
        self._suspended_until = 0.0
        # -- deliberate corruption (chaos/soak testing) ------------------
        self._sabotage_remaining = plan.rollback_sabotage_budget

    # -- links -----------------------------------------------------------
    def link(self, host: int) -> Optional[LinkFaultModel]:
        """The per-link fault hook, or ``None`` when nothing can fire."""
        return self._links[host]

    def link_degraded(self, host: int, now: float) -> bool:
        model = self._links[host]
        return model is not None and model.degraded(now)

    @property
    def can_disrupt_transfers(self) -> bool:
        return self.plan.can_disrupt_transfers

    # -- host stalls ------------------------------------------------------
    def stall_resume(self, host: int, now: float) -> Optional[float]:
        """When the stall window covering ``now`` ends, if any.

        Cursor-based equivalent of :meth:`FaultPlan.stall_resume` (the
        reference implementation, kept for tests): a host's stall checks
        happen at its own monotone heap turns, so past window starts never
        need rescanning — advance the per-host cursor to the first window
        start at or beyond ``now``'s period and compare once.
        """
        if not self._stalls_host[host]:
            return None
        period = self._stall_period
        start = self._stall_next_start[host]
        if now >= start + period:
            # Skipped whole periods; resynchronize to now's own window.
            start = (now // period) * period
            self._stall_next_start[host] = start
        elif now >= start + self._stall_duration:
            # Past this window; it can never cover a later ``now``.
            self._stall_next_start[host] = start + period
            return None
        if start <= now < start + self._stall_duration:
            return start + self._stall_duration
        return None

    def next_stall_start(self, host: int, now: float) -> float:
        """First stall-window start strictly after ``now`` (inf if none)."""
        if not self._stalls_host[host]:
            return _INF
        period = self._stall_period
        return (now // period + 1) * period

    # -- poisoned lines ---------------------------------------------------
    @property
    def next_poison_ns(self) -> float:
        if self._poison_idx >= len(self._poison_queue):
            return _INF
        return self._poison_queue[self._poison_idx].at_ns

    def activate_poison(self, now: float) -> List[int]:
        """Lines whose poison events came due by ``now`` (consumed once)."""
        due: List[int] = []
        queue = self._poison_queue
        while self._poison_idx < len(queue) and (
            queue[self._poison_idx].at_ns <= now
        ):
            line = queue[self._poison_idx].line
            self._poison_idx += 1
            if line not in self.poisoned:
                self.poisoned.add(line)
                due.append(line)
        return due

    def clear_poison(self, line: int) -> None:
        self.poisoned.discard(line)
        self.counters.poison_recoveries += 1
        self.counters.recovery_ns += self.poison_penalty_ns

    # -- host crashes -----------------------------------------------------
    @property
    def next_crash_ns(self) -> float:
        """The next unconsumed crash/rejoin epoch (inf when none remain)."""
        if self._crash_idx >= len(self._crash_schedule):
            return _INF
        return self._crash_schedule[self._crash_idx][0]

    def due_crash_events(self, now: float) -> List[Tuple[int, bool]]:
        """``(host, is_rejoin)`` epochs due by ``now`` (consumed once)."""
        due: List[Tuple[int, bool]] = []
        schedule = self._crash_schedule
        while self._crash_idx < len(schedule) and (
            schedule[self._crash_idx][0] <= now
        ):
            _, host, is_rejoin = schedule[self._crash_idx]
            self._crash_idx += 1
            due.append((host, is_rejoin))
        return due

    def crash_resume(self, host: int, clock: float) -> Optional[float]:
        """Whether ``host`` is dead at ``clock``, and until when.

        ``None``: alive, proceed.  ``inf``: dead forever — the caller
        drops the host's remaining stream.  A finite value: the rejoin
        epoch — the caller pauses the stream until then.
        """
        if host not in self.crashed:
            return None
        rejoin = self._rejoin_at.get(host, _INF)
        if rejoin == _INF:
            return _INF
        return rejoin if clock < rejoin else None

    def crash_fence(self, clock: float) -> float:
        """Event bound for batched execution under a crash plan.

        Before the next crash/rejoin epoch the fence is that epoch, so no
        batch crosses it.  While the governor holds promotions suspended
        the fence is 0.0 — forcing every access through the slow path,
        where the governor's per-access suppression applies identically
        in both backends.
        """
        if clock < self._suspended_until:
            return 0.0
        return self.next_crash_ns

    # -- migration governor -----------------------------------------------
    def promotion_blocked(self, host: int, now: float) -> bool:
        """Whether PIPM promotions are suppressed for ``host`` at ``now``.

        Two triggers: an active hysteresis hold (a crash recovery in
        progress, or the tail of one), and a degraded link — the latter
        also arms/extends the hold so a flapping link keeps promotions
        off for ``governor_hold_ns`` past its last degraded observation.
        """
        if now < self._suspended_until:
            self.counters.governor_skips += 1
            return True
        if self.link_degraded(host, now):
            self.counters.degraded_skips += 1
            if self.governor_hold_ns > 0:
                self._suspended_until = now + self.governor_hold_ns
            return True
        return False

    def suspend_promotions(self, until_ns: float) -> None:
        """Hold promotions suspended through ``until_ns`` (recovery)."""
        if until_ns > self._suspended_until:
            self._suspended_until = until_ns

    # -- deliberate corruption (chaos/soak testing) -----------------------
    def consume_rollback_sabotage(self) -> bool:
        """True when the next migration rollback should be botched.

        Each call consumes one unit of the plan's sabotage budget; the
        caller corrupts the transaction before rolling back so the
        invariant watchdog has a real inconsistency to detect.
        """
        if self._sabotage_remaining <= 0:
            return False
        self._sabotage_remaining -= 1
        self.counters.sabotaged_rollbacks += 1
        return True
