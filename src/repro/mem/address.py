"""Unified physical address map of a multi-host CXL-DSM system.

The CXL 3.x unified physical address space places the shared CXL-DSM pool
at the bottom of the map, followed by each host's GIM-exposed local DRAM.
Processors route each request with a "simple physical address range check"
(paper Section 4.3.3): addresses below :attr:`AddressMap.cxl_end` are shared
CXL-DSM, addresses inside a host's window are that host's local memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .. import units


#: Sentinel host id meaning "the CXL memory node" rather than a host.
CXL_NODE = -1


@dataclass(frozen=True)
class Region:
    """A named contiguous byte range inside the shared heap."""

    name: str
    start: int
    size: int

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    @property
    def num_pages(self) -> int:
        first = units.page_addr(self.start)
        last = units.page_addr(self.end - 1)
        return last - first + 1


class AddressMap:
    """Physical layout: CXL-DSM pool at 0, per-host local windows above."""

    def __init__(
        self, num_hosts: int, cxl_capacity: int, local_capacity: int
    ) -> None:
        if num_hosts < 1:
            raise ValueError("need at least one host")
        if cxl_capacity % units.PAGE_SIZE or local_capacity % units.PAGE_SIZE:
            raise ValueError("capacities must be page aligned")
        self.num_hosts = num_hosts
        self.cxl_capacity = cxl_capacity
        self.local_capacity = local_capacity
        self.cxl_start = 0
        self.cxl_end = cxl_capacity
        self._local_starts = [
            cxl_capacity + host * local_capacity for host in range(num_hosts)
        ]
        self.total_capacity = cxl_capacity + num_hosts * local_capacity

    # -- routing -------------------------------------------------------
    def is_cxl(self, addr: int) -> bool:
        """True if ``addr`` falls in the shared CXL-DSM range."""
        return 0 <= addr < self.cxl_end

    def home_of(self, addr: int) -> int:
        """The node owning the DRAM behind ``addr``.

        Returns :data:`CXL_NODE` for the shared pool, else the host id.
        """
        if addr < 0 or addr >= self.total_capacity:
            raise ValueError(f"address {addr:#x} outside the physical map")
        if addr < self.cxl_end:
            return CXL_NODE
        return (addr - self.cxl_end) // self.local_capacity

    def local_window(self, host: int) -> Tuple[int, int]:
        """``(start, end)`` of ``host``'s GIM window."""
        self._check_host(host)
        start = self._local_starts[host]
        return start, start + self.local_capacity

    def local_page_to_addr(self, host: int, pfn: int) -> int:
        """Byte address of local page frame ``pfn`` on ``host``."""
        self._check_host(host)
        if pfn < 0 or pfn >= self.local_capacity // units.PAGE_SIZE:
            raise ValueError(f"pfn {pfn} outside host {host} local DRAM")
        return self._local_starts[host] + units.page_base(pfn)

    def _check_host(self, host: int) -> None:
        if not 0 <= host < self.num_hosts:
            raise ValueError(f"host {host} out of range [0, {self.num_hosts})")

    # -- shared-heap layout -------------------------------------------
    def heap_allocator(self) -> "HeapAllocator":
        return HeapAllocator(self.cxl_capacity)


class HeapAllocator:
    """Page-aligned bump allocator for the shared CXL-DSM heap."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._cursor = 0
        self.regions: List[Region] = []

    def alloc(self, name: str, size: int, align: int = units.PAGE_SIZE) -> Region:
        """Allocate ``size`` bytes (rounded up to ``align``)."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if align & (align - 1):
            raise ValueError(f"alignment must be a power of two, got {align}")
        start = (self._cursor + align - 1) & ~(align - 1)
        padded = (size + align - 1) & ~(align - 1)
        if start + padded > self.capacity:
            raise MemoryError(
                f"shared heap exhausted allocating {name!r}: "
                f"{start + padded} > {self.capacity}"
            )
        region = Region(name, start, padded)
        self._cursor = start + padded
        self.regions.append(region)
        return region

    @property
    def used(self) -> int:
        return self._cursor

    def region_of(self, addr: int) -> Optional[Region]:
        for region in self.regions:
            if region.contains(addr):
                return region
        return None


class FrameAllocator:
    """Local-DRAM page frame allocator for migrated pages.

    The OS/hypervisor hands PIPM (and kernel migration schemes) free local
    page frames.  Capacity is bounded by the host's migration budget; frames
    are recycled through a free list on revocation/demotion.
    """

    def __init__(self, num_frames: int) -> None:
        if num_frames < 1:
            raise ValueError("need at least one frame")
        self.num_frames = num_frames
        self._next_fresh = 0
        self._free: List[int] = []

    def alloc(self) -> Optional[int]:
        """A free PFN, or ``None`` when the migration budget is exhausted."""
        if self._free:
            return self._free.pop()
        if self._next_fresh < self.num_frames:
            pfn = self._next_fresh
            self._next_fresh += 1
            return pfn
        return None

    def free(self, pfn: int) -> None:
        if pfn < 0 or pfn >= self._next_fresh:
            raise ValueError(f"freeing pfn {pfn} that was never allocated")
        self._free.append(pfn)

    def reclaim(self, pfn: int) -> None:
        """Re-allocate a specific recently freed PFN (rollback support)."""
        try:
            self._free.remove(pfn)
        except ValueError:
            raise ValueError(f"pfn {pfn} is not on the free list") from None

    @property
    def in_use(self) -> int:
        return self._next_fresh - len(self._free)

    @property
    def available(self) -> int:
        return self.num_frames - self.in_use
