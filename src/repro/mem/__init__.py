"""Memory substrates: address map, DRAM timing, CXL link, controllers."""

from .address import AddressMap, FrameAllocator, Region
from .cxl_link import CxlLink
from .dram import DramChannel, DramPool
from .controller import MemoryController

__all__ = [
    "AddressMap",
    "FrameAllocator",
    "Region",
    "CxlLink",
    "DramChannel",
    "DramPool",
    "MemoryController",
]
