"""Memory controller front-end: a thin facade over a :class:`DramPool`.

Separated from :mod:`repro.mem.dram` so host local memory and CXL memory can
attach identical controllers while the system model charges different
interconnect costs in front of them.
"""

from __future__ import annotations

from typing import Optional

from .. import units
from ..config import DramConfig
from ..stats import ScopedStats
from .dram import DramPool


class MemoryController:
    """Serves line and page granule requests against a DRAM pool."""

    def __init__(self, config: DramConfig, stats: Optional[ScopedStats] = None):
        self.config = config
        self.pool = DramPool(config, stats)
        self._stats = stats

    def read_line(self, addr: int, now: float) -> float:
        return self.pool.access(addr, now, units.CACHE_LINE)

    def write_line(self, addr: int, now: float) -> float:
        return self.pool.access(addr, now, units.CACHE_LINE)

    def transfer_page(self, addr: int, now: float) -> float:
        """Stream a whole 4 KB page (used by kernel page migration)."""
        return self.pool.access(addr, now, units.PAGE_SIZE)

    def reset(self) -> None:
        self.pool.reset()
