"""CXL link model: fixed per-direction latency + bandwidth server queues.

Each host owns one link to the CXL memory node (Fig. 1).  A message pays the
configured one-way latency plus serialization at the per-direction
bandwidth, plus queueing behind earlier traffic in the same direction.
Inter-host (4-hop) traffic traverses two links — the requester's and the
owner's — which the system model composes from two :class:`CxlLink` calls.

Resilience: a link may carry an attached fault model (see
:mod:`repro.faults`).  Faulty transfers retry with exponential backoff; a
transfer that exhausts its retry budget either absorbs a give-up penalty
(demand traffic, which must complete) or raises :class:`LinkTransferError`
(bulk migration traffic, which a transactional caller aborts and rolls
back).  When no fault model is attached the original single-path timing
code runs unchanged.
"""

from __future__ import annotations

from typing import Optional

from .. import units
from ..config import CxlLinkConfig
from ..stats import Counter, ScopedStats

#: Direction constants.
TO_DEVICE = 0
TO_HOST = 1


class LinkTransferError(Exception):
    """A link transfer exhausted its retry budget.

    Raised only on *faultable* transfers — bulk migration traffic that a
    transactional caller can abort and roll back.  Demand accesses never
    raise; they absorb a recovery penalty instead.
    """

    def __init__(self, host: int, direction: int, size_bytes: int,
                 reason: str = "retries exhausted") -> None:
        super().__init__(
            f"link {host} dir {direction}: {reason} ({size_bytes}B transfer)"
        )
        self.host = host
        self.direction = direction
        self.size_bytes = size_bytes
        self.reason = reason


class CxlLink:
    """One bidirectional host <-> CXL-node link."""

    __slots__ = ("config", "_busy_until", "_stats", "_faults", "_latency_ns",
                 "_bw_bytes_ns", "_messages", "_bytes", "_queue_ns",
                 "_retries", "_giveups")

    def __init__(self, config: CxlLinkConfig, stats: Optional[ScopedStats] = None):
        self.config = config
        self._busy_until = [0.0, 0.0]
        self._stats = stats
        self._faults = None  # Optional[repro.faults.LinkFaultModel]
        self._latency_ns = config.latency_ns
        # transfer_ns(size, gbs) == size * 1e9 / (gbs * GB); hoist the
        # constant denominator so the fault-free path skips the helper.
        self._bw_bytes_ns = config.bandwidth_gbs * units.GB
        self._bind_counters()

    def _bind_counters(self) -> None:
        """Preresolve the stat cells both timing paths bump.

        With no registry attached the cells are detached :class:`Counter`
        objects, so transfer accounting works identically either way — the
        fault path used to skip counting entirely without a registry and
        pay a string-key lookup with one.
        """
        stats = self._stats
        if stats is not None:
            self._messages = stats.counter("messages")
            self._bytes = stats.counter("bytes")
            self._queue_ns = stats.counter("queue_ns")
            self._retries = stats.counter("retries")
            self._giveups = stats.counter("giveups")
        else:
            self._messages = Counter()
            self._bytes = Counter()
            self._queue_ns = Counter()
            self._retries = Counter()
            self._giveups = Counter()

    def attach_faults(self, model) -> None:
        """Attach a per-link fault model (``None`` detaches)."""
        self._faults = model

    def transfer(self, direction: int, now: float, size_bytes: int) -> float:
        """Latency (ns) for ``size_bytes`` in ``direction`` starting ``now``."""
        if size_bytes <= 0:
            raise ValueError(
                f"transfer size must be positive, got {size_bytes}"
            )
        if self._faults is not None:
            return self._transfer_with_faults(
                direction, now, size_bytes, faultable=False
            )
        serialization = size_bytes * 1e9 / self._bw_bytes_ns
        busy_until = self._busy_until
        busy = busy_until[direction]
        if busy > now:
            queue_delay = busy - now
            busy_until[direction] = busy + serialization
        else:
            queue_delay = 0.0
            busy_until[direction] = now + serialization
        self._messages.value += 1
        self._bytes.value += size_bytes
        self._queue_ns.value += queue_delay
        return self._latency_ns + queue_delay + serialization

    def try_transfer(self, direction: int, now: float, size_bytes: int) -> float:
        """Like :meth:`transfer`, but raises :class:`LinkTransferError` when
        the retry budget runs out instead of absorbing a give-up penalty.

        Use for abortable bulk traffic (page/line migration payloads).
        """
        if size_bytes <= 0:
            raise ValueError(
                f"transfer size must be positive, got {size_bytes}"
            )
        if self._faults is None:
            return self.transfer(direction, now, size_bytes)
        return self._transfer_with_faults(
            direction, now, size_bytes, faultable=True
        )

    def _transfer_with_faults(
        self, direction: int, now: float, size_bytes: int, faultable: bool
    ) -> float:
        """The degraded/retrying path; only runs with a fault model attached."""
        faults = self._faults
        latency_ns = self.config.latency_ns
        bandwidth = self.config.bandwidth_gbs
        window = faults.window_at(now)
        if window is not None:
            latency_ns *= window.latency_x
            bandwidth /= window.bandwidth_x
        serialization = units.transfer_ns(size_bytes, bandwidth)
        queue_delay = max(0.0, self._busy_until[direction] - now)
        self._busy_until[direction] = (
            max(self._busy_until[direction], now) + serialization
        )
        # Bump the preresolved cells unconditionally, exactly like the
        # fault-free path: transfers count the same whether or not a stats
        # registry is attached and whether or not faults are configured.
        self._messages.value += 1
        self._bytes.value += size_bytes
        self._queue_ns.value += queue_delay
        total = latency_ns + queue_delay + serialization

        if faults.error_rate > 0.0:
            attempt = 1
            while faults.draw_error():
                if attempt >= faults.max_attempts:
                    faults.counters.link_giveups += 1
                    self._giveups.value += 1
                    if faultable:
                        raise LinkTransferError(
                            faults.host, direction, size_bytes
                        )
                    # Demand traffic must complete: charge the recovery
                    # penalty (scrub + re-issue through a clean path).
                    faults.counters.recovery_ns += faults.giveup_penalty_ns
                    total += faults.giveup_penalty_ns
                    break
                # Retry: exponential backoff, then the wire time again.
                backoff = faults.retry_backoff_ns * (2 ** (attempt - 1))
                faults.counters.link_retries += 1
                self._retries.value += 1
                self._busy_until[direction] += serialization
                self._messages.value += 1
                self._bytes.value += size_bytes
                total += backoff + serialization
                attempt += 1
        return total

    def round_trip(
        self,
        now: float,
        request_bytes: int = units.CACHE_LINE,
        response_bytes: int = units.CACHE_LINE,
    ) -> float:
        """Request to the device and response back, starting at ``now``."""
        if (
            self._faults is not None
            or request_bytes <= 0
            or response_bytes <= 0
        ):
            # Degraded/error handling lives in transfer(); this method only
            # inlines the fault-free common case (one call per CXL access).
            out = self.transfer(TO_DEVICE, now, request_bytes)
            back = self.transfer(TO_HOST, now + out, response_bytes)
            return out + back
        busy_until = self._busy_until
        bw = self._bw_bytes_ns
        latency_ns = self._latency_ns

        serialization = request_bytes * 1e9 / bw
        busy = busy_until[TO_DEVICE]
        if busy > now:
            queue_delay = busy - now
            busy_until[TO_DEVICE] = busy + serialization
        else:
            queue_delay = 0.0
            busy_until[TO_DEVICE] = now + serialization
        out = latency_ns + queue_delay + serialization
        self._queue_ns.value += queue_delay

        then = now + out
        serialization = response_bytes * 1e9 / bw
        busy = busy_until[TO_HOST]
        if busy > then:
            queue_delay = busy - then
            busy_until[TO_HOST] = busy + serialization
        else:
            queue_delay = 0.0
            busy_until[TO_HOST] = then + serialization
        self._messages.value += 2
        self._bytes.value += request_bytes + response_bytes
        self._queue_ns.value += queue_delay
        # Sum in the same association transfer() uses: out + (lat + q + ser).
        return out + (latency_ns + queue_delay + serialization)

    def try_round_trip(
        self,
        now: float,
        request_bytes: int = units.CACHE_LINE,
        response_bytes: int = units.CACHE_LINE,
    ) -> float:
        """Abortable round trip: raises :class:`LinkTransferError` on give-up."""
        out = self.try_transfer(TO_DEVICE, now, request_bytes)
        back = self.try_transfer(TO_HOST, now + out, response_bytes)
        return out + back

    def occupancy_until(self, direction: int) -> float:
        return self._busy_until[direction]

    def reset(self) -> None:
        self._busy_until = [0.0, 0.0]
        if self._stats is not None:
            self._stats.clear()
        # clear() drops the scope's keys from the registry; re-bind so
        # post-reset traffic lands in live (fresh, zeroed) cells.
        self._bind_counters()


#: Size of a bare coherence/control message on the link (header-only flit).
CONTROL_BYTES = 16
