"""CXL link model: fixed per-direction latency + bandwidth server queues.

Each host owns one link to the CXL memory node (Fig. 1).  A message pays the
configured one-way latency plus serialization at the per-direction
bandwidth, plus queueing behind earlier traffic in the same direction.
Inter-host (4-hop) traffic traverses two links — the requester's and the
owner's — which the system model composes from two :class:`CxlLink` calls.
"""

from __future__ import annotations

from typing import Optional

from .. import units
from ..config import CxlLinkConfig
from ..stats import ScopedStats

#: Direction constants.
TO_DEVICE = 0
TO_HOST = 1


class CxlLink:
    """One bidirectional host <-> CXL-node link."""

    def __init__(self, config: CxlLinkConfig, stats: Optional[ScopedStats] = None):
        self.config = config
        self._busy_until = [0.0, 0.0]
        self._stats = stats

    def transfer(self, direction: int, now: float, size_bytes: int) -> float:
        """Latency (ns) for ``size_bytes`` in ``direction`` starting ``now``."""
        serialization = units.transfer_ns(size_bytes, self.config.bandwidth_gbs)
        queue_delay = max(0.0, self._busy_until[direction] - now)
        self._busy_until[direction] = (
            max(self._busy_until[direction], now) + serialization
        )
        if self._stats is not None:
            self._stats.add("messages")
            self._stats.add("bytes", size_bytes)
            self._stats.add("queue_ns", queue_delay)
        return self.config.latency_ns + queue_delay + serialization

    def round_trip(
        self,
        now: float,
        request_bytes: int = units.CACHE_LINE,
        response_bytes: int = units.CACHE_LINE,
    ) -> float:
        """Request to the device and response back, starting at ``now``."""
        out = self.transfer(TO_DEVICE, now, request_bytes)
        back = self.transfer(TO_HOST, now + out, response_bytes)
        return out + back

    def occupancy_until(self, direction: int) -> float:
        return self._busy_until[direction]

    def reset(self) -> None:
        self._busy_until = [0.0, 0.0]


#: Size of a bare coherence/control message on the link (header-only flit).
CONTROL_BYTES = 16
