"""DDR5 DRAM timing model.

Per-channel model with open-row (row-buffer) tracking per bank and a
bandwidth server queue: an access pays the row-hit or row-miss latency plus
any queueing delay behind earlier transfers on the same channel.  This is
deliberately lighter than a full DRAM scheduler — the simulator charges
latency at access granularity — but it captures the two effects the paper's
evaluation depends on: locality-sensitive latency and bandwidth contention
during migration bursts.
"""

from __future__ import annotations

from typing import Dict, Optional

from .. import units
from ..config import DramConfig
from ..stats import ScopedStats


class DramChannel:
    """One DDR5 channel: banks with open rows + a bandwidth server."""

    def __init__(self, config: DramConfig, stats: Optional[ScopedStats] = None):
        self.config = config
        self._open_rows: Dict[int, int] = {}
        self._busy_until = 0.0
        self._stats = stats

    def access(self, addr: int, now: float, size_bytes: int = units.CACHE_LINE) -> float:
        """Latency (ns) to service ``size_bytes`` at ``addr`` starting ``now``."""
        cfg = self.config
        row = addr // cfg.row_bytes
        bank = row % cfg.banks_per_channel
        open_row = self._open_rows.get(bank)
        if open_row == row:
            device_ns = cfg.row_hit_ns
            if self._stats is not None:
                self._stats.add("row_hits")
        else:
            device_ns = cfg.row_miss_ns
            self._open_rows[bank] = row
            if self._stats is not None:
                self._stats.add("row_misses")
        serialization = units.transfer_ns(size_bytes, cfg.bandwidth_gbs_per_channel)
        queue_delay = max(0.0, self._busy_until - now)
        self._busy_until = max(self._busy_until, now) + serialization
        if self._stats is not None:
            self._stats.add("accesses")
            self._stats.add("bytes", size_bytes)
            self._stats.add("queue_ns", queue_delay)
        return device_ns + queue_delay + serialization

    def reset(self) -> None:
        self._open_rows.clear()
        self._busy_until = 0.0


class DramPool:
    """A DRAM pool of one or more channels with address interleaving."""

    def __init__(self, config: DramConfig, stats: Optional[ScopedStats] = None):
        self.config = config
        self.channels = [
            DramChannel(config, stats.scoped(f"ch{i}") if stats else None)
            for i in range(config.channels)
        ]
        # Interleave at 4KB granularity across channels.
        self._interleave_shift = units.PAGE_SHIFT

    def access(self, addr: int, now: float, size_bytes: int = units.CACHE_LINE) -> float:
        channel = (addr >> self._interleave_shift) % len(self.channels)
        return self.channels[channel].access(addr, now, size_bytes)

    @property
    def total_bandwidth_gbs(self) -> float:
        return self.config.bandwidth_gbs_per_channel * self.config.channels

    def reset(self) -> None:
        for channel in self.channels:
            channel.reset()
