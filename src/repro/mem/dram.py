"""DDR5 DRAM timing model.

Per-channel model with open-row (row-buffer) tracking per bank and a
bandwidth server queue: an access pays the row-hit or row-miss latency plus
any queueing delay behind earlier transfers on the same channel.  This is
deliberately lighter than a full DRAM scheduler — the simulator charges
latency at access granularity — but it captures the two effects the paper's
evaluation depends on: locality-sensitive latency and bandwidth contention
during migration bursts.
"""

from __future__ import annotations

from typing import Dict, Optional

from .. import units
from ..config import DramConfig
from ..stats import Counter, ScopedStats


class DramChannel:
    """One DDR5 channel: banks with open rows + a bandwidth server.

    The channel is the innermost object on the per-access hot path (every
    cache miss lands here), so the constructor hoists the config fields
    into instance slots and preresolves its statistics counters; untracked
    channels bump free-standing cells so ``access`` stays branch-free.
    """

    __slots__ = ("config", "_open_rows", "_busy_until", "_row_bytes",
                 "_banks", "_row_hit_ns", "_row_miss_ns", "_bw_bytes_ns",
                 "_line_ns", "_row_hits", "_row_misses", "_accesses",
                 "_bytes", "_queue_ns")

    def __init__(self, config: DramConfig, stats: Optional[ScopedStats] = None):
        self.config = config
        self._open_rows: Dict[int, int] = {}
        self._busy_until = 0.0
        self._row_bytes = config.row_bytes
        self._banks = config.banks_per_channel
        self._row_hit_ns = config.row_hit_ns
        self._row_miss_ns = config.row_miss_ns
        # transfer_ns(size, gbs) == size * 1e9 / (gbs * GB); the
        # denominator is constant per channel, so precompute it (and the
        # common cache-line cost) with identical rounding to the helper.
        self._bw_bytes_ns = config.bandwidth_gbs_per_channel * units.GB
        self._line_ns = units.transfer_ns(
            units.CACHE_LINE, config.bandwidth_gbs_per_channel
        )
        if stats is not None:
            self._row_hits = stats.counter("row_hits")
            self._row_misses = stats.counter("row_misses")
            self._accesses = stats.counter("accesses")
            self._bytes = stats.counter("bytes")
            self._queue_ns = stats.counter("queue_ns")
        else:
            self._row_hits = Counter()
            self._row_misses = Counter()
            self._accesses = Counter()
            self._bytes = Counter()
            self._queue_ns = Counter()

    def access(self, addr: int, now: float, size_bytes: int = units.CACHE_LINE) -> float:
        """Latency (ns) to service ``size_bytes`` at ``addr`` starting ``now``."""
        row = addr // self._row_bytes
        bank = row % self._banks
        open_rows = self._open_rows
        if open_rows.get(bank) == row:
            device_ns = self._row_hit_ns
            self._row_hits.value += 1
        else:
            device_ns = self._row_miss_ns
            open_rows[bank] = row
            self._row_misses.value += 1
        if size_bytes == units.CACHE_LINE:
            serialization = self._line_ns
        else:
            serialization = size_bytes * 1e9 / self._bw_bytes_ns
        busy = self._busy_until
        if busy > now:
            queue_delay = busy - now
            self._busy_until = busy + serialization
        else:
            queue_delay = 0.0
            self._busy_until = now + serialization
        self._accesses.value += 1
        self._bytes.value += size_bytes
        self._queue_ns.value += queue_delay
        return device_ns + queue_delay + serialization

    def reset(self) -> None:
        self._open_rows.clear()
        self._busy_until = 0.0


class DramPool:
    """A DRAM pool of one or more channels with address interleaving."""

    __slots__ = ("config", "channels", "_num_channels", "_interleave_shift")

    def __init__(self, config: DramConfig, stats: Optional[ScopedStats] = None):
        self.config = config
        self.channels = [
            DramChannel(config, stats.scoped(f"ch{i}") if stats else None)
            for i in range(config.channels)
        ]
        self._num_channels = len(self.channels)
        # Interleave at 4KB granularity across channels.
        self._interleave_shift = units.PAGE_SHIFT

    def access(self, addr: int, now: float, size_bytes: int = units.CACHE_LINE) -> float:
        channel = (addr >> self._interleave_shift) % self._num_channels
        return self.channels[channel].access(addr, now, size_bytes)

    @property
    def total_bandwidth_gbs(self) -> float:
        return self.config.bandwidth_gbs_per_channel * self.config.channels

    def reset(self) -> None:
        for channel in self.channels:
            channel.reset()
