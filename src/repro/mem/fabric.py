"""Switched CXL fabric: hosts -> switches -> memory node path objects.

The flat model gives every host a private point-to-point
:class:`~repro.mem.cxl_link.CxlLink` to the memory node, and the system
composes inter-host (4-hop) flows from two such links.  At rack scale the
interesting regime is *switched*: each host's edge link feeds a switch,
and the resources behind the switch — the device-facing port, leaf->spine
uplinks — are shared per-direction bandwidth queues that contend across
hosts.  This module builds that graph from a
:class:`~repro.config.FabricConfig` and resolves it into per-host *path
objects* with the same timing interface as a bare link:

* ``flat`` — no switches; :meth:`FabricTopology.paths` returns the edge
  :class:`CxlLink` objects themselves (identity, not wrappers), so the
  flat preset is byte-identical to the pre-fabric model by construction.
* ``single-switch`` — every path is edge link + the switch's shared
  device port segment (one switch hop).
* ``two-tier`` — edge link + the leaf's shared uplink + the spine's
  shared device port (two switch hops).

Faults compose at two levels: per-host edge fault models attach to the
edge links exactly as before, and a ``switchdown`` window degrades every
segment a given switch owns — so every path traversing that switch slows
down for the window, without touching paths routed elsewhere.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .. import units
from ..config import CxlLinkConfig, FabricConfig
from ..stats import Counter, ScopedStats, StatRegistry
from .cxl_link import TO_DEVICE, TO_HOST, CxlLink


class FabricSegment:
    """One shared fabric resource: a switch port or an inter-switch link.

    Timing mirrors :class:`CxlLink`: a traversal pays the segment's
    one-way latency (the switch hop that feeds it plus any wire latency)
    plus serialization at the segment's per-direction bandwidth, plus
    queueing behind earlier traffic in the same direction — from *any*
    host whose path crosses this segment; that sharing is the whole point.

    A degrade window (the ``switchdown`` fault) multiplies latency and
    serialization while ``start <= now < end``; being a pure function of
    simulated time it keeps runs bit-for-bit reproducible.
    """

    __slots__ = ("name", "_busy_until", "_latency_ns", "_bw_bytes_ns",
                 "_stats", "_messages", "_bytes", "_queue_ns",
                 "_deg_start", "_deg_end", "_deg_latency_x", "_deg_bw_x")

    def __init__(
        self,
        name: str,
        latency_ns: float,
        bandwidth_gbs: float,
        stats: Optional[ScopedStats] = None,
    ) -> None:
        self.name = name
        self._busy_until = [0.0, 0.0]
        self._latency_ns = latency_ns
        self._bw_bytes_ns = bandwidth_gbs * units.GB
        self._stats = stats
        self._deg_start = 0.0
        self._deg_end = 0.0
        self._deg_latency_x = 1.0
        self._deg_bw_x = 1.0
        self._bind_counters()

    def _bind_counters(self) -> None:
        stats = self._stats
        if stats is not None:
            self._messages = stats.counter("messages")
            self._bytes = stats.counter("bytes")
            self._queue_ns = stats.counter("queue_ns")
        else:
            self._messages = Counter()
            self._bytes = Counter()
            self._queue_ns = Counter()

    def set_degrade(
        self, start_ns: float, end_ns: float, latency_x: float,
        bandwidth_x: float,
    ) -> None:
        """Arm a degrade window (``end <= start`` disarms)."""
        self._deg_start = start_ns
        self._deg_end = end_ns
        self._deg_latency_x = latency_x
        self._deg_bw_x = bandwidth_x

    def degraded_at(self, now: float) -> bool:
        return self._deg_start <= now < self._deg_end

    def transfer(self, direction: int, now: float, size_bytes: int) -> float:
        """Latency (ns) to cross the segment in ``direction`` at ``now``."""
        latency = self._latency_ns
        serialization = size_bytes * 1e9 / self._bw_bytes_ns
        if self._deg_start <= now < self._deg_end:
            latency *= self._deg_latency_x
            serialization *= self._deg_bw_x
        busy_until = self._busy_until
        busy = busy_until[direction]
        if busy > now:
            queue_delay = busy - now
            busy_until[direction] = busy + serialization
        else:
            queue_delay = 0.0
            busy_until[direction] = now + serialization
        self._messages.value += 1
        self._bytes.value += size_bytes
        self._queue_ns.value += queue_delay
        return latency + queue_delay + serialization

    def occupancy_until(self, direction: int) -> float:
        return self._busy_until[direction]

    def reset(self) -> None:
        self._busy_until = [0.0, 0.0]
        if self._stats is not None:
            self._stats.clear()
        self._bind_counters()


class SwitchedPath:
    """One host's route through the fabric, with a link-compatible surface.

    Composes the host's private edge :class:`CxlLink` with the ordered
    shared :class:`FabricSegment` list between its switch and the memory
    node.  Host-bound and device-bound flights traverse the resources in
    opposite orders, each leg starting when the previous one delivers, so
    queueing at a congested shared segment delays exactly the traffic
    that actually reaches it.

    Edge-link fault models (transient errors, per-host degrade windows)
    stay attached to the edge link; segment traversals never error — a
    ``switchdown`` only slows them — so retry/abort semantics are
    unchanged from the flat model.
    """

    __slots__ = ("edge", "segments", "name")

    def __init__(
        self, edge: CxlLink, segments: Sequence[FabricSegment],
        name: str = "",
    ) -> None:
        self.edge = edge
        self.segments = tuple(segments)
        self.name = name

    @property
    def config(self) -> CxlLinkConfig:
        return self.edge.config

    def attach_faults(self, model) -> None:
        self.edge.attach_faults(model)

    def hop_count(self) -> int:
        """Switch hops between the host and the memory node."""
        return len(self.segments)

    def degraded_at(self, now: float) -> bool:
        return any(seg.degraded_at(now) for seg in self.segments)

    # -- timing --------------------------------------------------------
    def transfer(self, direction: int, now: float, size_bytes: int) -> float:
        if direction == TO_DEVICE:
            lat = self.edge.transfer(direction, now, size_bytes)
            for seg in self.segments:
                lat += seg.transfer(direction, now + lat, size_bytes)
            return lat
        lat = 0.0
        for seg in reversed(self.segments):
            lat += seg.transfer(direction, now + lat, size_bytes)
        return lat + self.edge.transfer(direction, now + lat, size_bytes)

    def try_transfer(
        self, direction: int, now: float, size_bytes: int
    ) -> float:
        """Abortable variant: edge-link give-ups raise before any shared
        segment's queue state mutates (device-bound), so an aborted bulk
        transfer never charges phantom occupancy downstream."""
        if direction == TO_DEVICE:
            lat = self.edge.try_transfer(direction, now, size_bytes)
            for seg in self.segments:
                lat += seg.transfer(direction, now + lat, size_bytes)
            return lat
        lat = 0.0
        for seg in reversed(self.segments):
            lat += seg.transfer(direction, now + lat, size_bytes)
        return lat + self.edge.try_transfer(direction, now + lat, size_bytes)

    def round_trip(
        self,
        now: float,
        request_bytes: int = units.CACHE_LINE,
        response_bytes: int = units.CACHE_LINE,
    ) -> float:
        out = self.transfer(TO_DEVICE, now, request_bytes)
        back = self.transfer(TO_HOST, now + out, response_bytes)
        return out + back

    def try_round_trip(
        self,
        now: float,
        request_bytes: int = units.CACHE_LINE,
        response_bytes: int = units.CACHE_LINE,
    ) -> float:
        out = self.try_transfer(TO_DEVICE, now, request_bytes)
        back = self.try_transfer(TO_HOST, now + out, response_bytes)
        return out + back

    def occupancy_until(self, direction: int) -> float:
        busy = self.edge.occupancy_until(direction)
        for seg in self.segments:
            seg_busy = seg.occupancy_until(direction)
            if seg_busy > busy:
                busy = seg_busy
        return busy

    def reset(self) -> None:
        self.edge.reset()
        for seg in self.segments:
            seg.reset()


class HostPair:
    """The resolved route between two hosts (through the memory node).

    Inter-host (4-hop) flows are two fabric traversals — the requester's
    and the owner's — joined at the CXL node; this object is the per-pair
    resolution of both ends, so call sites name the pair once instead of
    re-composing two link lookups inline.
    """

    __slots__ = ("requester", "owner")

    def __init__(self, requester, owner) -> None:
        self.requester = requester
        self.owner = owner

    def hop_count(self) -> int:
        """Total switch hops a 4-hop flow crosses (both directions)."""
        total = 0
        for end in (self.requester, self.owner):
            if isinstance(end, SwitchedPath):
                total += end.hop_count()
        return total


class FabricTopology:
    """The host/switch/memory-node graph, resolved into path objects.

    Owns the per-host edge links (``links``), the shared segments, and
    the per-host resolved paths (``paths``).  For the ``flat`` topology
    ``paths[h] is links[h]`` — the identity is what guarantees the flat
    preset cannot perturb a single float of the pre-fabric model.
    """

    def __init__(
        self,
        fabric: FabricConfig,
        link_config: CxlLinkConfig,
        num_hosts: int,
        stats: Optional[StatRegistry] = None,
    ) -> None:
        fabric.validate()
        self.config = fabric
        self.num_hosts = num_hosts
        self.links: List[CxlLink] = [
            CxlLink(
                link_config,
                stats.scoped(f"link{h}") if stats is not None else None,
            )
            for h in range(num_hosts)
        ]
        #: ``switch_segments[s]`` = shared segments switch ``s`` owns.
        self.switch_segments: List[Tuple[FabricSegment, ...]] = []
        self.segments: List[FabricSegment] = []

        def _scoped(name: str) -> Optional[ScopedStats]:
            return stats.scoped(name) if stats is not None else None

        if fabric.topology == "flat":
            self.paths: List[CxlLink] = list(self.links)
        elif fabric.topology == "single-switch":
            port = FabricSegment(
                "switch0.memport",
                fabric.switch_latency_ns,
                fabric.switch_port_bandwidth_gbs,
                _scoped("switch0"),
            )
            self.segments = [port]
            self.switch_segments = [(port,)]
            self.paths = [
                SwitchedPath(link, (port,), name=f"host{h}-switch0-mem")
                for h, link in enumerate(self.links)
            ]
        else:  # two-tier
            leaves = fabric.num_leaves(num_hosts)
            uplinks = [
                FabricSegment(
                    f"leaf{leaf}.uplink",
                    fabric.switch_latency_ns + fabric.uplink_latency_ns,
                    fabric.uplink_bandwidth_gbs,
                    _scoped(f"leaf{leaf}"),
                )
                for leaf in range(leaves)
            ]
            port = FabricSegment(
                "spine.memport",
                fabric.switch_latency_ns,
                fabric.switch_port_bandwidth_gbs,
                _scoped("spine"),
            )
            self.segments = [*uplinks, port]
            # Switch ids: leaves 0..L-1, then the spine at L.
            self.switch_segments = [(up,) for up in uplinks] + [(port,)]
            self.paths = [
                SwitchedPath(
                    link,
                    (uplinks[h // fabric.hosts_per_leaf], port),
                    name=f"host{h}-leaf{h // fabric.hosts_per_leaf}-spine-mem",
                )
                for h, link in enumerate(self.links)
            ]

    @property
    def num_switches(self) -> int:
        return len(self.switch_segments)

    def host_path(self, host: int):
        """The resolved path object serving ``host``'s fabric traffic."""
        return self.paths[host]

    def pair(self, requester: int, owner: int) -> HostPair:
        """Resolve the route of a 4-hop flow between two hosts."""
        return self._pairs[requester][owner]

    # Lazily built: systems only reach for pairs on inter-host flows.
    @property
    def _pairs(self) -> List[List[HostPair]]:
        cache = getattr(self, "_pair_cache", None)
        if cache is None:
            cache = [
                [HostPair(self.paths[a], self.paths[b])
                 for b in range(self.num_hosts)]
                for a in range(self.num_hosts)
            ]
            self._pair_cache = cache
        return cache

    def apply_switch_down(
        self, switch: int, start_ns: float, end_ns: float,
        latency_x: float, bandwidth_x: float,
    ) -> None:
        """Degrade every path traversing ``switch`` for the window.

        Arms the degrade window on each shared segment the switch owns;
        any path routed through the switch crosses one of them, so every
        such path slows down while the window is open.
        """
        if not 0 <= switch < len(self.switch_segments):
            raise ValueError(
                f"switch {switch} out of range; topology "
                f"{self.config.topology!r} has {len(self.switch_segments)}"
            )
        for segment in self.switch_segments[switch]:
            segment.set_degrade(start_ns, end_ns, latency_x, bandwidth_x)

    def hosts_behind(self, switch: int) -> Tuple[int, ...]:
        """Hosts whose path traverses ``switch``."""
        owned = set(self.switch_segments[switch])
        return tuple(
            h for h, path in enumerate(self.paths)
            if isinstance(path, SwitchedPath)
            and any(seg in owned for seg in path.segments)
        )

    def reset(self) -> None:
        for link in self.links:
            link.reset()
        for segment in self.segments:
            segment.reset()

    def describe(self) -> str:
        if self.config.topology == "flat":
            return f"flat: {self.num_hosts} point-to-point links"
        hops = self.paths[0].hop_count() if self.paths else 0
        return (
            f"{self.config.topology}: {self.num_hosts} hosts, "
            f"{self.num_switches} switches, {hops} hop(s) per path"
        )
