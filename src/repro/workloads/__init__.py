"""Workload trace generators for every Table 1 benchmark.

The paper drives its simulator with Pin traces of 8-48 GB multi-threaded
workloads.  We synthesize per-host access streams that reproduce each
workload's *sharing structure* — per-host-private-in-shared-heap regions,
contested fine-grained-shared pages, cold data, read/write mix, and
spatial/temporal locality — at a scaled footprint (see DESIGN.md,
"Substitutions").  GAPBS kernels run real traversals over a real RMAT/CSR
graph; the other suites use calibrated mixture models.
"""

from .trace import (
    AccessRecord,
    MixtureComponent,
    StreamBuilder,
    WorkloadScale,
    WorkloadTrace,
)
from .graph import CsrGraph, rmat_graph
from .synthetic import SyntheticSpec, partitioned_split_trace, synthetic_trace
from .registry import WORKLOADS, generate, workload_names

__all__ = [
    "AccessRecord",
    "MixtureComponent",
    "StreamBuilder",
    "WorkloadScale",
    "WorkloadTrace",
    "CsrGraph",
    "rmat_graph",
    "SyntheticSpec",
    "synthetic_trace",
    "partitioned_split_trace",
    "WORKLOADS",
    "generate",
    "workload_names",
]
