"""XSBench: the Monte Carlo neutron-transport macroscopic-XS lookup kernel.

Structure (Tramm et al.): every lookup binary-searches the unionized energy
grid, then gathers cross-section data for ~(num nuclides in material)
consecutive entries from large nuclide tables.  Each simulated host
processes an independent particle batch whose energies concentrate in a
per-host band of the grid (different materials/assemblies per rank), so:

* each host is hot on *its* band of the energy grid and the nuclide-table
  rows it maps to (page-affine, migration-friendly),
* a tail of lookups is spread across the full grid (cross-host traffic),
* the workload is read-only.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .. import units
from .trace import (
    MixtureComponent,
    StreamBuilder,
    WorkloadTrace,
    partition_region,
    random_lines,
)


def _burst_pool(rng: np.random.Generator, region, count: int,
                burst_lines: int = 4, alpha: float = 1.1) -> np.ndarray:
    """Random-start sequential bursts (XS gathers), as a cyclic pool."""
    starts = random_lines(rng, region, count, alpha=alpha)
    offsets = (np.arange(burst_lines, dtype=np.int64) * units.CACHE_LINE)
    pool = (starts[:, None] + offsets[None, :]).reshape(-1)
    limit = region.start + region.size - units.CACHE_LINE
    return np.minimum(pool, limit)


def generate_xsbench(ctx) -> WorkloadTrace:
    footprint = int(ctx.scale.footprint_bytes * 0.92)
    grid = ctx.heap.alloc("energy_grid", footprint * 3 // 10)
    tables = ctx.heap.alloc("nuclide_tables", footprint * 6 // 10)
    index = ctx.heap.alloc("material_index", max(footprint // 10, units.PAGE_SIZE))

    streams: List = []
    for host in range(ctx.num_hosts):
        rng = np.random.default_rng(ctx.scale.seed * 271 + host)
        band = partition_region(grid, host, ctx.num_hosts)
        table_band = partition_region(tables, host, ctx.num_hosts)
        n = ctx.scale.accesses_per_host
        components = [
            MixtureComponent(
                "own-band-grid", 0.30,
                random_lines(rng, band, n, alpha=1.05), 0.0, sequential=False,
            ),
            MixtureComponent(
                "global-grid", 0.10,
                random_lines(rng, grid, n // 4), 0.0, sequential=False,
            ),
            MixtureComponent(
                "own-xs-gather", 0.42,
                _burst_pool(rng, table_band, n // 4), 0.0, sequential=True,
            ),
            MixtureComponent(
                "remote-xs-gather", 0.08,
                _burst_pool(rng, tables, n // 8), 0.0, sequential=True,
            ),
            MixtureComponent(
                "material-index", 0.10,
                random_lines(rng, index, n // 8, alpha=1.3), 0.0,
                sequential=False,
            ),
        ]
        builder = StreamBuilder(rng, cores=ctx.cores_per_host, mean_gap=12)
        streams.append(builder.build(components, n))

    return WorkloadTrace(
        name="xsbench",
        num_hosts=ctx.num_hosts,
        streams=streams,
        footprint_bytes=ctx.heap.used,
        regions=list(ctx.heap.regions),
        mlp=5.0,
        read_write_ratio=1.0,
        description="XSBench macroscopic cross-section lookups",
    )
