"""PARSEC 3.0 trace generators: streamcluster, fluidanimate, canneal, bodytrack.

Each generator reproduces the benchmark's documented sharing structure at a
scaled footprint:

* **streamcluster** — each worker streams over its block of points
  repeatedly (k-median gain evaluation) and all workers contend on the
  small shared center set.
* **fluidanimate** — spatial grid partitioned across hosts; interior cells
  are host-private, *boundary* cells are shared between neighbouring hosts
  on the same pages — the canonical fine-grained (sub-page) sharing pattern
  partial migration targets.
* **canneal** — random element swaps across the whole netlist from every
  host: no affinity at all, the anti-migration stress case.
* **bodytrack** — a read-shared body model + per-host particle sets
  (annealed particle filter).
"""

from __future__ import annotations

from typing import List

import numpy as np

from .. import units
from .trace import (
    MixtureComponent,
    StreamBuilder,
    WorkloadTrace,
    partition_region,
    random_lines,
    seq_lines,
)


def _finish(ctx, name: str, streams, mlp: float, rw: float,
            description: str) -> WorkloadTrace:
    return WorkloadTrace(
        name=name,
        num_hosts=ctx.num_hosts,
        streams=streams,
        footprint_bytes=ctx.heap.used,
        regions=list(ctx.heap.regions),
        mlp=mlp,
        read_write_ratio=rw,
        description=description,
    )


def generate_streamcluster(ctx) -> WorkloadTrace:
    footprint = int(ctx.scale.footprint_bytes * 0.62)
    points = ctx.heap.alloc("points", footprint * 9 // 10)
    centers = ctx.heap.alloc("centers", max(64 * units.KB, footprint // 10))

    streams: List = []
    for host in range(ctx.num_hosts):
        rng = np.random.default_rng(ctx.scale.seed * 31 + host)
        block = partition_region(points, host, ctx.num_hosts)
        n = ctx.scale.accesses_per_host
        components = [
            MixtureComponent(
                "point-stream", 0.72, seq_lines(block), 0.08, sequential=True,
            ),
            MixtureComponent(
                "shared-centers", 0.28,
                random_lines(rng, centers, n // 2, alpha=1.05),
                0.25, sequential=False,
            ),
        ]
        builder = StreamBuilder(rng, cores=ctx.cores_per_host, mean_gap=10)
        streams.append(builder.build(components, n))
    return _finish(ctx, "streamcluster", streams, mlp=4.0, rw=0.88,
                   description="PARSEC streamcluster (k-median streaming)")


def generate_fluidanimate(ctx) -> WorkloadTrace:
    footprint = int(ctx.scale.footprint_bytes * 0.52)
    grid = ctx.heap.alloc("fluid_grid", footprint)

    # Interior slabs per host plus shared boundary slabs between neighbours.
    # Boundaries are deliberately *not* page-aligned multiples: neighbouring
    # hosts touch lines of the same pages.
    streams: List = []
    boundary_lines = max(64, (grid.size // units.CACHE_LINE) // 50)
    for host in range(ctx.num_hosts):
        rng = np.random.default_rng(ctx.scale.seed * 53 + host)
        slab = partition_region(grid, host, ctx.num_hosts)
        interior = seq_lines(slab)
        # The boundary with the next host: the last/first lines of adjacent
        # slabs, touched by both.
        lo_bound = interior[:boundary_lines]
        hi_bound = interior[-boundary_lines:]
        next_slab = partition_region(grid, (host + 1) % ctx.num_hosts,
                                     ctx.num_hosts)
        neighbour_lines = seq_lines(next_slab)[:boundary_lines]
        n = ctx.scale.accesses_per_host
        components = [
            MixtureComponent("interior", 0.62, interior, 0.4, sequential=True),
            MixtureComponent(
                "interior-rand", 0.18,
                random_lines(rng, slab, n // 4), 0.35, sequential=False,
            ),
            MixtureComponent("own-boundary", 0.10,
                             np.concatenate([lo_bound, hi_bound]),
                             0.4, sequential=True),
            MixtureComponent("neighbour-boundary", 0.10, neighbour_lines,
                             0.25, sequential=True),
        ]
        builder = StreamBuilder(rng, cores=ctx.cores_per_host, mean_gap=11)
        streams.append(builder.build(components, n))
    return _finish(ctx, "fluidanimate", streams, mlp=4.5, rw=0.62,
                   description="PARSEC fluidanimate (SPH grid, shared borders)")


def generate_canneal(ctx) -> WorkloadTrace:
    footprint = int(ctx.scale.footprint_bytes * 0.55)
    netlist = ctx.heap.alloc("netlist", footprint)

    streams: List = []
    for host in range(ctx.num_hosts):
        rng = np.random.default_rng(ctx.scale.seed * 97 + host)
        own_slab = partition_region(netlist, host, ctx.num_hosts)
        n = ctx.scale.accesses_per_host
        components = [
            # Swap candidates: uniformly random elements, read then written.
            MixtureComponent(
                "swap-elements", 0.42,
                random_lines(rng, netlist, n), 0.45, sequential=False,
            ),
            # Each worker's candidate generator is seeded around its own
            # slab (spatial annealing schedule): a per-host-affine tail.
            MixtureComponent(
                "own-neighbourhood", 0.43,
                random_lines(rng, own_slab, n, alpha=1.05),
                0.4, sequential=False,
            ),
            # Neighbour-cost evaluation: short random reads.
            MixtureComponent(
                "cost-eval", 0.15,
                random_lines(rng, netlist, n // 2), 0.0, sequential=False,
            ),
        ]
        builder = StreamBuilder(rng, cores=ctx.cores_per_host, mean_gap=13)
        streams.append(builder.build(components, n))
    return _finish(ctx, "canneal", streams, mlp=2.5, rw=0.6,
                   description="PARSEC canneal (random netlist swaps)")


def generate_bodytrack(ctx) -> WorkloadTrace:
    footprint = int(ctx.scale.footprint_bytes * 0.5)
    model = ctx.heap.alloc("body_model", footprint * 4 // 10)
    particles = ctx.heap.alloc("particles", footprint * 5 // 10)
    weights = ctx.heap.alloc("weights", max(footprint // 10, units.PAGE_SIZE))

    streams: List = []
    for host in range(ctx.num_hosts):
        rng = np.random.default_rng(ctx.scale.seed * 131 + host)
        own = partition_region(particles, host, ctx.num_hosts)
        own_w = partition_region(weights, host, ctx.num_hosts)
        n = ctx.scale.accesses_per_host
        components = [
            MixtureComponent(
                "model-read", 0.30,
                random_lines(rng, model, n // 2, alpha=1.08),
                0.0, sequential=False,
            ),
            MixtureComponent("own-particles", 0.50, seq_lines(own), 0.45,
                             sequential=True),
            MixtureComponent(
                "own-weights", 0.15,
                random_lines(rng, own_w, n // 4), 0.5, sequential=False,
            ),
            MixtureComponent(
                "shared-weights", 0.05,
                random_lines(rng, weights, n // 8), 0.2, sequential=False,
            ),
        ]
        builder = StreamBuilder(rng, cores=ctx.cores_per_host, mean_gap=12)
        streams.append(builder.build(components, n))
    return _finish(ctx, "bodytrack", streams, mlp=3.5, rw=0.68,
                   description="PARSEC bodytrack (annealed particle filter)")
