"""Workload registry: name -> generator, with the Table 1 inventory.

``generate(name, num_hosts, scale)`` builds the shared-heap layout on a
fresh allocator and returns a :class:`WorkloadTrace`.  Generators receive a
:class:`GenContext` carrying the allocator, RNG, and scaling parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from .. import units
from ..mem.address import HeapAllocator
from .trace import WorkloadScale, WorkloadTrace
from . import gapbs, parsec, silo, xsbench


@dataclass
class GenContext:
    """Everything a workload generator needs."""

    num_hosts: int
    cores_per_host: int
    scale: WorkloadScale
    heap: HeapAllocator
    rng: np.random.Generator = field(init=False)

    def __post_init__(self) -> None:
        self.rng = np.random.default_rng(self.scale.seed)


@dataclass(frozen=True)
class WorkloadInfo:
    """Table 1 row: suite, paper footprint, and our generator."""

    name: str
    suite: str
    paper_footprint_gb: int
    generator: Callable[[GenContext], WorkloadTrace]
    description: str


WORKLOADS: Dict[str, WorkloadInfo] = {
    info.name: info
    for info in [
        WorkloadInfo("sssp", "GAPBS (Kron)", 48, gapbs.generate_sssp,
                     "Single-source shortest paths"),
        WorkloadInfo("bfs", "GAPBS", 48, gapbs.generate_bfs,
                     "Breadth-first search"),
        WorkloadInfo("pr", "GAPBS", 48, gapbs.generate_pr,
                     "PageRank"),
        WorkloadInfo("cc", "GAPBS", 48, gapbs.generate_cc,
                     "Connected components"),
        WorkloadInfo("bc", "GAPBS", 48, gapbs.generate_bc,
                     "Betweenness centrality"),
        WorkloadInfo("tc", "GAPBS", 48, gapbs.generate_tc,
                     "Triangle counting"),
        WorkloadInfo("xsbench", "XSBench", 42, xsbench.generate_xsbench,
                     "Monte Carlo neutron transport kernel"),
        WorkloadInfo("streamcluster", "PARSEC", 18,
                     parsec.generate_streamcluster, "Data stream clustering"),
        WorkloadInfo("fluidanimate", "PARSEC", 10,
                     parsec.generate_fluidanimate, "Fluid simulation"),
        WorkloadInfo("canneal", "PARSEC", 12, parsec.generate_canneal,
                     "Annealing simulation"),
        WorkloadInfo("bodytrack", "PARSEC", 8, parsec.generate_bodytrack,
                     "Annealed particle filter"),
        WorkloadInfo("tpcc", "Silo", 24, silo.generate_tpcc,
                     "TPC-C (default mix)"),
        WorkloadInfo("ycsb", "Silo", 15, silo.generate_ycsb,
                     "YCSB (R:W 4:1)"),
    ]
}


def workload_names() -> List[str]:
    """All Table 1 workload names, in the paper's order."""
    return list(WORKLOADS)


def generate(
    name: str,
    num_hosts: int = 4,
    scale: WorkloadScale | None = None,
    cores_per_host: int = 4,
    heap_capacity: int | None = None,
) -> WorkloadTrace:
    """Generate the named workload's multi-host trace."""
    try:
        info = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {workload_names()}"
        ) from None
    if scale is None:
        scale = WorkloadScale.default()
    capacity = heap_capacity
    if capacity is None:
        # Generous heap: generators size their regions from the scale.
        capacity = max(4 * scale.footprint_bytes, 16 * units.MB)
    ctx = GenContext(
        num_hosts=num_hosts,
        cores_per_host=cores_per_host,
        scale=scale,
        heap=HeapAllocator(capacity),
    )
    trace = info.generator(ctx)
    if trace.num_hosts != num_hosts or len(trace.streams) != num_hosts:
        raise AssertionError(f"{name}: generator produced a malformed trace")
    return trace
