"""Trace format and stream-synthesis machinery.

A :class:`WorkloadTrace` holds one access stream per host.  Each record is
a plain tuple ``(gap_instructions, byte_address, is_write, core)`` — the
simulator hot loop iterates millions of these, so they stay tuples rather
than objects.

Streams are synthesized from *mixture components*: cyclic sequential scans,
zipfian random accesses, and strided walks over named regions of the shared
heap (or a host's private window).  Components are interleaved
probabilistically with a seeded RNG so runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .. import units
from ..mem.address import Region

#: One trace record: (gap_instructions, byte_address, is_write, core).
AccessRecord = Tuple[int, int, int, int]


@dataclass(frozen=True)
class WorkloadScale:
    """How big to make a synthetic run.

    ``footprint_bytes`` scales every region proportionally against the
    workload's natural layout; ``accesses_per_host`` bounds trace length.
    """

    accesses_per_host: int = 150_000
    footprint_bytes: int = 4 * units.MB
    seed: int = 7

    @classmethod
    def tiny(cls) -> "WorkloadScale":
        """For unit tests: fast, still enough reuse to exercise migration."""
        return cls(accesses_per_host=8_000, footprint_bytes=512 * units.KB,
                   seed=7)

    @classmethod
    def small(cls) -> "WorkloadScale":
        return cls(accesses_per_host=50_000, footprint_bytes=2 * units.MB,
                   seed=7)

    @classmethod
    def default(cls) -> "WorkloadScale":
        return cls()

    @classmethod
    def large(cls) -> "WorkloadScale":
        return cls(accesses_per_host=400_000, footprint_bytes=8 * units.MB,
                   seed=7)


@dataclass
class WorkloadTrace:
    """A complete multi-host workload: metadata + per-host streams."""

    name: str
    num_hosts: int
    streams: List[List[AccessRecord]]
    footprint_bytes: int
    regions: List[Region] = field(default_factory=list)
    mlp: float = 4.0
    read_write_ratio: float = 0.8  # fraction of reads, informational
    description: str = ""

    @property
    def total_accesses(self) -> int:
        return sum(len(s) for s in self.streams)

    @property
    def total_instructions(self) -> int:
        return sum(sum(rec[0] for rec in s) for s in self.streams)

    def baked_arrays(self, host: int, ns_per_instr: float) -> "BakedStream":
        """``streams[host]`` as a structure-of-arrays :class:`BakedStream`.

        The instruction gap is pre-multiplied into compute nanoseconds (one
        vectorized multiply at load instead of per access), the write flag
        becomes a real bool array, and line/page indices are precomputed —
        the batch engine backend consumes the arrays directly and the loop
        backend unpacks them into plain tuples via
        :meth:`BakedStream.records`.
        """
        stream = self.streams[host]
        raw = np.array(stream, dtype=np.int64).reshape(-1, 4)
        addr = np.ascontiguousarray(raw[:, 1])
        line = addr >> units.LINE_SHIFT
        return BakedStream(
            compute_ns=raw[:, 0] * float(ns_per_instr),
            addr=addr,
            is_write=raw[:, 2] != 0,
            core=np.ascontiguousarray(raw[:, 3]),
            line=line,
            page=line >> (units.PAGE_SHIFT - units.LINE_SHIFT),
        )

    def baked_stream(
        self, host: int, ns_per_instr: float
    ) -> List[Tuple[float, int, bool, int]]:
        """``streams[host]`` as flat run-loop records (the loop backend's
        view of :meth:`baked_arrays`)."""
        return self.baked_arrays(host, ns_per_instr).records()

    def validate(
        self,
        cxl_capacity: int,
        total_capacity: int,
        addr_arrays: Optional[Sequence[np.ndarray]] = None,
    ) -> None:
        """Check every address of every host stream against the physical map.

        Addresses must fall in the shared CXL pool ``[0, cxl_capacity)`` or
        inside the issuing host's *own* local window — an address in another
        host's window would silently be served as if it were requester-
        private data.  Vectorized over the full streams; ``addr_arrays``
        lets callers that already hold the baked SoA address arrays skip
        rebuilding them.
        """
        if not 0 <= cxl_capacity <= total_capacity:
            raise ValueError(
                f"{self.name}: cxl capacity {cxl_capacity} outside total "
                f"capacity {total_capacity}"
            )
        local_capacity, remainder = divmod(
            total_capacity - cxl_capacity, max(self.num_hosts, 1)
        )
        if remainder:
            raise ValueError(
                f"{self.name}: local capacity {total_capacity - cxl_capacity}"
                f" does not divide across {self.num_hosts} hosts"
            )
        for host, stream in enumerate(self.streams):
            if not stream:
                continue
            if addr_arrays is not None:
                addrs = addr_arrays[host]
            else:
                addrs = np.array([rec[1] for rec in stream], dtype=np.int64)
            window_start = cxl_capacity + host * local_capacity
            window_end = window_start + local_capacity
            ok = (addrs >= 0) & (
                (addrs < cxl_capacity)
                | ((addrs >= window_start) & (addrs < window_end))
            )
            if ok.all():
                continue
            index = int(np.argmax(~ok))
            addr = int(addrs[index])
            if 0 <= addr < total_capacity:
                raise ValueError(
                    f"{self.name}: host {host} record {index} address "
                    f"{addr:#x} falls inside another host's local window"
                )
            raise ValueError(
                f"{self.name}: host {host} record {index} address "
                f"{addr:#x} outside the physical map "
                f"[0, {total_capacity:#x})"
            )


@dataclass
class BakedStream:
    """One host's stream as parallel numpy arrays (structure of arrays).

    ``compute_ns`` is float64 (gap * ns_per_instruction), ``addr``/``core``
    are int64, ``is_write`` is bool, and ``line``/``page`` are the
    precomputed cache-line and page indices the batch engine backend keys
    its array probes on.
    """

    compute_ns: np.ndarray
    addr: np.ndarray
    is_write: np.ndarray
    core: np.ndarray
    line: np.ndarray
    page: np.ndarray

    def __len__(self) -> int:
        return len(self.addr)

    def records(self) -> List[Tuple[float, int, bool, int]]:
        """Flat ``(compute_ns, addr, is_write, core)`` tuples.

        ``ndarray.tolist`` hands back native Python floats/ints/bools with
        exactly the values the arrays hold, so the loop backend sees the
        same records it always did.
        """
        return list(zip(
            self.compute_ns.tolist(), self.addr.tolist(),
            self.is_write.tolist(), self.core.tolist(),
        ))


@dataclass(frozen=True)
class MixtureComponent:
    """One behavioural strand of a host's access stream."""

    name: str
    weight: float
    addresses: np.ndarray  # cyclic pool of byte addresses (int64)
    write_fraction: float = 0.0
    #: If True the pool is walked cyclically in order; else sampled randomly
    #: by the pre-generated order of ``addresses`` (callers pre-shuffle /
    #: pre-zipf them).
    sequential: bool = True


def zipf_indices(
    rng: np.random.Generator, n: int, count: int, alpha: float = 0.99
) -> np.ndarray:
    """``count`` indexes in ``[0, n)`` with zipf popularity skew ``alpha``.

    Samples the *bounded* zipf distribution over exactly ``n`` ranks by
    inverse-CDF (``P(rank k) ∝ (k + 1) ** -alpha``), so any positive skew —
    including the common ``alpha < 1`` regime that ``numpy.random.zipf``
    cannot represent — is honored exactly as requested, and no probability
    mass from an unbounded tail gets clipped onto the last rank.  Popular
    ranks are spread over the range (not clustered at 0) via a fixed
    permutation.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if alpha <= 0:
        raise ValueError(f"zipf alpha must be positive, got {alpha}")
    weights = np.arange(1, n + 1, dtype=np.float64) ** -alpha
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    ranks = np.searchsorted(cdf, rng.random(count), side="right")
    # Spread hot ranks across the region deterministically.
    perm = np.random.default_rng(12345).permutation(n)
    return perm[ranks]


def seq_lines(region: Region, start: int = 0) -> np.ndarray:
    """All line-granule addresses of ``region`` starting at ``start`` lines in."""
    lines = region.size // units.CACHE_LINE
    idx = (np.arange(lines, dtype=np.int64) + start) % lines
    return region.start + idx * units.CACHE_LINE


def random_lines(
    rng: np.random.Generator,
    region: Region,
    count: int,
    alpha: Optional[float] = None,
) -> np.ndarray:
    """``count`` line-aligned addresses in ``region``; zipf if ``alpha``."""
    lines = region.size // units.CACHE_LINE
    if alpha is None:
        idx = rng.integers(0, lines, size=count, dtype=np.int64)
    else:
        idx = zipf_indices(rng, lines, count, alpha).astype(np.int64)
    return region.start + idx * units.CACHE_LINE


class StreamBuilder:
    """Interleaves mixture components into one host's access stream."""

    def __init__(
        self,
        rng: np.random.Generator,
        cores: int = 4,
        mean_gap: int = 10,
    ) -> None:
        if mean_gap < 1:
            raise ValueError("mean_gap must be >= 1")
        self.rng = rng
        self.cores = cores
        self.mean_gap = mean_gap

    def build(
        self, components: Sequence[MixtureComponent], length: int
    ) -> List[AccessRecord]:
        """Synthesize ``length`` records by weighted component interleaving."""
        if not components:
            raise ValueError("need at least one mixture component")
        weights = np.array([c.weight for c in components], dtype=np.float64)
        if (weights <= 0).any():
            raise ValueError("component weights must be positive")
        weights /= weights.sum()
        choice = self.rng.choice(len(components), size=length, p=weights)

        addrs = np.empty(length, dtype=np.int64)
        writes = np.zeros(length, dtype=np.int64)
        for idx, comp in enumerate(components):
            mask = choice == idx
            count = int(mask.sum())
            if count == 0:
                continue
            pool = comp.addresses
            if comp.sequential:
                take = (np.arange(count, dtype=np.int64)) % len(pool)
            else:
                take = self.rng.integers(0, len(pool), size=count)
            addrs[mask] = pool[take]
            if comp.write_fraction > 0:
                writes[mask] = (
                    self.rng.random(count) < comp.write_fraction
                ).astype(np.int64)

        gaps = self.rng.geometric(1.0 / self.mean_gap, size=length)
        cores = np.arange(length, dtype=np.int64) % self.cores
        return list(zip(gaps.tolist(), addrs.tolist(),
                        writes.tolist(), cores.tolist()))

    def from_arrays(
        self,
        addrs: np.ndarray,
        writes: np.ndarray,
        mean_gap: Optional[int] = None,
    ) -> List[AccessRecord]:
        """Wrap pre-computed address/write arrays into trace records."""
        if len(addrs) != len(writes):
            raise ValueError("addrs and writes must be the same length")
        gap = mean_gap if mean_gap is not None else self.mean_gap
        gaps = self.rng.geometric(1.0 / gap, size=len(addrs))
        cores = np.arange(len(addrs), dtype=np.int64) % self.cores
        return list(zip(gaps.tolist(), np.asarray(addrs, dtype=np.int64).tolist(),
                        np.asarray(writes, dtype=np.int64).tolist(),
                        cores.tolist()))


def private_region(local_window: Tuple[int, int], size: int) -> Region:
    """A host-private (stack/code) region inside the host's local window."""
    start, end = local_window
    if start + size > end:
        raise ValueError("private region exceeds the local window")
    return Region("private", start, size)


def partition_region(region: Region, part: int, parts: int) -> Region:
    """The ``part``-th of ``parts`` page-aligned slices of ``region``."""
    if not 0 <= part < parts:
        raise ValueError(f"part {part} out of range [0, {parts})")
    pages = region.size // units.PAGE_SIZE
    base_pages = pages // parts
    extra = pages % parts
    start_page = part * base_pages + min(part, extra)
    count = base_pages + (1 if part < extra else 0)
    return Region(
        f"{region.name}[{part}/{parts}]",
        region.start + start_page * units.PAGE_SIZE,
        max(count, 1) * units.PAGE_SIZE,
    )
