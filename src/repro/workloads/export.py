"""Trace export/import.

Generating the GAPBS traversal traces takes seconds at large scales;
saving a generated :class:`~repro.workloads.trace.WorkloadTrace` to an
``.npz`` archive lets sweeps and CI reuse identical inputs (and lets users
replay traces captured elsewhere, Pin-style, as long as they convert to
the record format).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..mem.address import Region
from .trace import WorkloadTrace

#: format marker stored in every archive
FORMAT_VERSION = 1


def save_trace(trace: WorkloadTrace, path: Union[str, Path]) -> Path:
    """Serialize ``trace`` to a compressed ``.npz`` archive."""
    path = Path(path)
    arrays = {}
    for host, stream in enumerate(trace.streams):
        arrays[f"stream{host}"] = np.asarray(stream, dtype=np.int64)
    meta = {
        "version": FORMAT_VERSION,
        "name": trace.name,
        "num_hosts": trace.num_hosts,
        "footprint_bytes": trace.footprint_bytes,
        "mlp": trace.mlp,
        "read_write_ratio": trace.read_write_ratio,
        "description": trace.description,
        "regions": [
            {"name": r.name, "start": r.start, "size": r.size}
            for r in trace.regions
        ],
    }
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    # np.savez appends .npz if missing.
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def load_trace(path: Union[str, Path]) -> WorkloadTrace:
    """Load a trace previously written by :func:`save_trace`."""
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["meta_json"]).decode())
        if meta.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {meta.get('version')!r}"
            )
        streams = []
        for host in range(meta["num_hosts"]):
            array = archive[f"stream{host}"]
            if array.ndim != 2 or array.shape[1] != 4:
                raise ValueError(
                    f"stream{host} must be (N, 4), got {array.shape}"
                )
            streams.append([tuple(int(x) for x in row) for row in array])
    return WorkloadTrace(
        name=meta["name"],
        num_hosts=meta["num_hosts"],
        streams=streams,
        footprint_bytes=meta["footprint_bytes"],
        regions=[Region(**r) for r in meta["regions"]],
        mlp=meta["mlp"],
        read_write_ratio=meta["read_write_ratio"],
        description=meta["description"],
    )
