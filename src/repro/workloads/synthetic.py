"""User-configurable synthetic workloads.

Beyond the thirteen Table 1 reproductions, downstream users exploring
multi-host CXL-DSM placement need controllable inputs: "what if 30% of my
traffic is cross-host?", "what if pages are half-and-half split between two
hosts?".  :func:`synthetic_trace` builds a multi-host trace from explicit
sharing knobs; :func:`partitioned_split_trace` builds the adversarial
sub-page-sharing pattern partial migration targets (every page's lines are
split between two hosts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .. import units
from ..mem.address import HeapAllocator
from .trace import (
    MixtureComponent,
    StreamBuilder,
    WorkloadScale,
    WorkloadTrace,
    partition_region,
    random_lines,
    seq_lines,
)


@dataclass(frozen=True)
class SyntheticSpec:
    """Sharing-structure knobs for a synthetic workload."""

    name: str = "synthetic"
    #: fraction of accesses to the host's own partition (page-affine data)
    own_fraction: float = 0.6
    #: fraction to a globally shared, contested region
    shared_fraction: float = 0.3
    #: remainder goes to a cold, rarely reused region
    write_fraction: float = 0.2
    own_zipf_alpha: float | None = 1.1
    shared_zipf_alpha: float | None = 1.05
    sequential_own: bool = False
    mlp: float = 4.0
    mean_gap: int = 10

    def validate(self) -> None:
        if not 0.0 <= self.own_fraction <= 1.0:
            raise ValueError("own_fraction must be in [0, 1]")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise ValueError("shared_fraction must be in [0, 1]")
        if self.own_fraction + self.shared_fraction > 1.0:
            raise ValueError("own + shared fractions exceed 1")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")


def synthetic_trace(
    spec: SyntheticSpec,
    num_hosts: int = 4,
    scale: WorkloadScale | None = None,
    cores_per_host: int = 4,
) -> WorkloadTrace:
    """Build a multi-host trace from a :class:`SyntheticSpec`."""
    spec.validate()
    if scale is None:
        scale = WorkloadScale.default()
    heap = HeapAllocator(max(4 * scale.footprint_bytes, 16 * units.MB))
    own_total = heap.alloc("own_partitions", scale.footprint_bytes // 2)
    shared = heap.alloc("shared", scale.footprint_bytes // 4)
    cold = heap.alloc("cold", scale.footprint_bytes // 4)

    cold_fraction = max(0.0, 1.0 - spec.own_fraction - spec.shared_fraction)
    streams: List = []
    for host in range(num_hosts):
        rng = np.random.default_rng(scale.seed * 389 + host)
        own = partition_region(own_total, host, num_hosts)
        n = scale.accesses_per_host
        components = []
        if spec.own_fraction > 0:
            pool = (
                seq_lines(own)
                if spec.sequential_own
                else random_lines(rng, own, n, alpha=spec.own_zipf_alpha)
            )
            components.append(MixtureComponent(
                "own", spec.own_fraction, pool, spec.write_fraction,
                sequential=spec.sequential_own,
            ))
        if spec.shared_fraction > 0:
            components.append(MixtureComponent(
                "shared", spec.shared_fraction,
                random_lines(rng, shared, n, alpha=spec.shared_zipf_alpha),
                spec.write_fraction, sequential=False,
            ))
        if cold_fraction > 0:
            components.append(MixtureComponent(
                "cold", cold_fraction, random_lines(rng, cold, n),
                spec.write_fraction / 2, sequential=False,
            ))
        builder = StreamBuilder(rng, cores=cores_per_host,
                                mean_gap=spec.mean_gap)
        streams.append(builder.build(components, n))

    return WorkloadTrace(
        name=spec.name,
        num_hosts=num_hosts,
        streams=streams,
        footprint_bytes=heap.used,
        regions=list(heap.regions),
        mlp=spec.mlp,
        read_write_ratio=1.0 - spec.write_fraction,
        description=(
            f"synthetic: own={spec.own_fraction:.0%} "
            f"shared={spec.shared_fraction:.0%}"
        ),
    )


def partitioned_split_trace(
    num_hosts: int = 4,
    scale: WorkloadScale | None = None,
    cores_per_host: int = 4,
    split_lines: int = 48,
    minor_fraction: float = 0.25,
) -> WorkloadTrace:
    """The paper's motivating sub-page sharing pattern, distilled.

    Hosts form pairs over a shared page set.  The even host of each pair is
    the *dominant* accessor: all its traffic hits the first ``split_lines``
    lines of the pair's pages.  The odd host spends ``minor_fraction`` of
    its traffic on the *remaining* lines of the same pages (and the rest on
    a private stream).  Whole-page migration to the dominant host turns the
    minority traffic into non-cacheable 4-hop accesses; PIPM migrates only
    the dominant host's lines, leaving the minority lines cacheable in CXL
    memory.  A balanced 50/50 split would (correctly) never be migrated by
    the majority vote at all.
    """
    if not 1 <= split_lines < units.LINES_PER_PAGE:
        raise ValueError("split_lines must be in [1, 63]")
    if num_hosts < 2 or num_hosts % 2:
        raise ValueError("split pattern needs an even host count >= 2")
    if not 0.0 < minor_fraction < 0.5:
        raise ValueError("minor_fraction must leave the even host dominant")
    if scale is None:
        scale = WorkloadScale.default()
    heap = HeapAllocator(max(4 * scale.footprint_bytes, 16 * units.MB))
    region = heap.alloc("split_pages", scale.footprint_bytes // 2)
    aside = heap.alloc("minor_private", scale.footprint_bytes // 2)
    num_pages = region.size // units.PAGE_SIZE

    pairs = num_hosts // 2
    pages = np.arange(num_pages, dtype=np.int64)

    def half_pool(pair: int, first: bool) -> np.ndarray:
        own_pages = pages[pages % pairs == pair]
        if first:
            lines = np.arange(split_lines, dtype=np.int64)
        else:
            lines = np.arange(split_lines, units.LINES_PER_PAGE,
                              dtype=np.int64)
        return (
            region.start
            + own_pages[:, None] * units.PAGE_SIZE
            + lines[None, :] * units.CACHE_LINE
        ).reshape(-1)

    streams: List = []
    for host in range(num_hosts):
        rng = np.random.default_rng(scale.seed * 433 + host)
        pair = host // 2
        if host % 2 == 0:
            components = [
                MixtureComponent("dominant-half", 1.0,
                                 half_pool(pair, first=True), 0.3,
                                 sequential=True),
            ]
        else:
            private = partition_region(aside, host, num_hosts)
            components = [
                MixtureComponent("minor-half", minor_fraction,
                                 half_pool(pair, first=False), 0.3,
                                 sequential=True),
                MixtureComponent("private-stream", 1.0 - minor_fraction,
                                 seq_lines(private), 0.3, sequential=True),
            ]
        builder = StreamBuilder(rng, cores=cores_per_host, mean_gap=9)
        streams.append(builder.build(components, scale.accesses_per_host))

    return WorkloadTrace(
        name="split-pages",
        num_hosts=num_hosts,
        streams=streams,
        footprint_bytes=heap.used,
        regions=list(heap.regions),
        mlp=5.0,
        read_write_ratio=0.7,
        description=(
            f"adversarial sub-page sharing: lines 0-{split_lines - 1} vs "
            f"{split_lines}-63 hot on different hosts"
        ),
    )
