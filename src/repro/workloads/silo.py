"""Silo in-memory database trace generators: TPC-C and YCSB (Table 1).

The paper runs TPC-C (default mix) and YCSB (R:W 4:1) on Silo with the
database instance in shared CXL-DSM.  Transaction routing gives the access
streams their sharing structure:

* **TPC-C** — each host fronts its *home warehouses*: ~85% of new-order /
  payment traffic hits the host's own slices of customer/stock (page-affine
  but mixed with remote rows on shared pages), ~15% is remote-warehouse
  (cross-host), and the tiny warehouse/district rows are contested
  read-write hotspots.  Order-lines are per-host append streams.
* **YCSB** — one table, global zipfian key popularity shared by all hosts
  (the hot keys are hot *everywhere*, so page migration is contested), plus
  a per-host uniform tail; 4:1 read:write.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .. import units
from .trace import (
    MixtureComponent,
    StreamBuilder,
    WorkloadTrace,
    partition_region,
    random_lines,
    seq_lines,
)


def generate_tpcc(ctx) -> WorkloadTrace:
    footprint = int(ctx.scale.footprint_bytes * 0.7)
    warehouse = ctx.heap.alloc("warehouse", max(16 * units.KB, footprint // 64))
    district = ctx.heap.alloc("district", max(32 * units.KB, footprint // 32))
    customer = ctx.heap.alloc("customer", footprint * 4 // 10)
    stock = ctx.heap.alloc("stock", footprint * 4 // 10)
    orders = ctx.heap.alloc("orders", footprint * 15 // 100)

    streams: List = []
    for host in range(ctx.num_hosts):
        rng = np.random.default_rng(ctx.scale.seed * 173 + host)
        own_customer = partition_region(customer, host, ctx.num_hosts)
        own_stock = partition_region(stock, host, ctx.num_hosts)
        own_orders = partition_region(orders, host, ctx.num_hosts)
        n = ctx.scale.accesses_per_host
        components = [
            MixtureComponent(
                "home-customer", 0.28,
                random_lines(rng, own_customer, n, alpha=1.05),
                0.3, sequential=False,
            ),
            MixtureComponent(
                "home-stock", 0.27,
                random_lines(rng, own_stock, n, alpha=1.02),
                0.35, sequential=False,
            ),
            MixtureComponent(
                "remote-rows", 0.10,
                np.concatenate([
                    random_lines(rng, customer, n // 8),
                    random_lines(rng, stock, n // 8),
                ]),
                0.3, sequential=False,
            ),
            MixtureComponent(
                "warehouse-hot", 0.08,
                random_lines(rng, warehouse, n // 8, alpha=1.2),
                0.5, sequential=False,
            ),
            MixtureComponent(
                "district-hot", 0.09,
                random_lines(rng, district, n // 8, alpha=1.15),
                0.45, sequential=False,
            ),
            MixtureComponent(
                "orderline-append", 0.18, seq_lines(own_orders),
                0.9, sequential=True,
            ),
        ]
        builder = StreamBuilder(rng, cores=ctx.cores_per_host, mean_gap=14)
        streams.append(builder.build(components, n))

    return WorkloadTrace(
        name="tpcc",
        num_hosts=ctx.num_hosts,
        streams=streams,
        footprint_bytes=ctx.heap.used,
        regions=list(ctx.heap.regions),
        mlp=3.0,
        read_write_ratio=0.62,
        description="TPC-C (default mix) on Silo over CXL-DSM",
    )


def generate_ycsb(ctx) -> WorkloadTrace:
    footprint = int(ctx.scale.footprint_bytes * 0.6)
    records = ctx.heap.alloc("records", footprint * 9 // 10)
    index = ctx.heap.alloc("index", max(footprint // 10, units.PAGE_SIZE))

    streams: List = []
    for host in range(ctx.num_hosts):
        rng = np.random.default_rng(ctx.scale.seed * 211 + host)
        own_slice = partition_region(records, host, ctx.num_hosts)
        n = ctx.scale.accesses_per_host
        components = [
            # Global zipf: the same hot keys for every host (contested).
            # At production scale the hot set spreads across thousands of
            # pages, so per-page contention is broad but shallow — modelled
            # with a flat zipf exponent.
            MixtureComponent(
                "global-zipf", 0.15,
                random_lines(rng, records, n, alpha=1.02),
                0.2, sequential=False,
            ),
            # Load balancers shard key ranges: each host is hot on its slice.
            MixtureComponent(
                "own-zipf", 0.60,
                random_lines(rng, own_slice, n, alpha=1.1),
                0.2, sequential=False,
            ),
            MixtureComponent(
                "own-tail", 0.15,
                random_lines(rng, own_slice, n), 0.2, sequential=False,
            ),
            MixtureComponent(
                "index-probe", 0.10,
                random_lines(rng, index, n // 4, alpha=1.3),
                0.05, sequential=False,
            ),
        ]
        builder = StreamBuilder(rng, cores=ctx.cores_per_host, mean_gap=13)
        streams.append(builder.build(components, n))

    return WorkloadTrace(
        name="ycsb",
        num_hosts=ctx.num_hosts,
        streams=streams,
        footprint_bytes=ctx.heap.used,
        regions=list(ctx.heap.regions),
        mlp=3.0,
        read_write_ratio=0.8,
        description="YCSB (R:W 4:1) on Silo over CXL-DSM",
    )
