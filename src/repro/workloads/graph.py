"""RMAT graph generation and CSR layout for the GAPBS kernels.

GAPBS evaluates on Kronecker (Kron) graphs; RMAT with the Graph500
parameters (a=0.57, b=0.19, c=0.19) is the standard synthetic equivalent.
The generator builds a real CSR structure (offsets + neighbor arrays) with
numpy, and the GAPBS trace generators in :mod:`repro.workloads.gapbs` run
real traversals over it, so the cross-host sharing in the traces comes from
genuine graph structure (power-law hubs shared by every host, partition
locality for adjacency data).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import units
from ..mem.address import HeapAllocator, Region

#: Bytes per vertex-indexed array element (ids/ranks are 8-byte).
ELEM = 8


@dataclass
class CsrGraph:
    """Compressed-sparse-row graph."""

    num_vertices: int
    offsets: np.ndarray  # int64[num_vertices + 1]
    neighbors: np.ndarray  # int64[num_edges]

    @property
    def num_edges(self) -> int:
        return int(self.offsets[-1])

    def degree(self, v: int) -> int:
        return int(self.offsets[v + 1] - self.offsets[v])

    def adjacency(self, v: int) -> np.ndarray:
        return self.neighbors[self.offsets[v]:self.offsets[v + 1]]

    @property
    def csr_bytes(self) -> int:
        return (self.num_vertices + 1) * ELEM + self.num_edges * ELEM


def rmat_graph(
    num_vertices: int,
    avg_degree: int = 8,
    seed: int = 7,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> CsrGraph:
    """Generate an RMAT graph in CSR form.

    ``num_vertices`` is rounded up to a power of two (RMAT requirement).
    Self-loops are kept (harmless for traversal traces); duplicate edges
    are not deduplicated, matching GAPBS's Kron generator defaults.
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    scale = (num_vertices - 1).bit_length()
    n = 1 << scale
    num_edges = n * avg_degree
    rng = np.random.default_rng(seed)

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    # Quadrant probabilities per bit level.
    ab = a + b
    abc = a + b + c
    for _ in range(scale):
        r = rng.random(num_edges)
        right = r > ab  # quadrants c or d -> dst high bit set? (see below)
        # Recompute: quadrant a: src0 dst0; b: src0 dst1; c: src1 dst0; d: src1 dst1
        in_b = (r >= a) & (r < ab)
        in_c = (r >= ab) & (r < abc)
        in_d = r >= abc
        src = (src << 1) | (in_c | in_d).astype(np.int64)
        dst = (dst << 1) | (in_b | in_d).astype(np.int64)
        del right
    # Permute vertex ids so hubs are spread across partitions.
    perm = rng.permutation(n)
    src = perm[src]
    dst = perm[dst]

    # Canonical CSR: rows sorted by source, each adjacency list sorted by
    # neighbor id (GAPBS builds sorted lists; this gives neighbor-indexed
    # property reads their real spatial locality).
    order = np.lexsort((dst, src))
    src_sorted = src[order]
    neighbors = dst[order]
    counts = np.bincount(src_sorted, minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return CsrGraph(n, offsets, neighbors)


@dataclass
class GraphLayout:
    """Shared-heap placement of a graph workload's data structures."""

    graph: CsrGraph
    offsets_region: Region
    edges_region: Region
    prop_a_region: Region  # e.g. rank (source), distance, label
    prop_b_region: Region  # e.g. rank (destination), parent

    def offsets_addr(self, v: np.ndarray) -> np.ndarray:
        return self.offsets_region.start + v * ELEM

    def edge_addr(self, edge_index: np.ndarray) -> np.ndarray:
        return self.edges_region.start + edge_index * ELEM

    def prop_a_addr(self, v: np.ndarray) -> np.ndarray:
        return self.prop_a_region.start + v * ELEM

    def prop_b_addr(self, v: np.ndarray) -> np.ndarray:
        return self.prop_b_region.start + v * ELEM


def layout_graph(heap: HeapAllocator, graph: CsrGraph) -> GraphLayout:
    """Allocate CSR + two vertex property arrays on the shared heap."""
    offsets_region = heap.alloc("offsets", (graph.num_vertices + 1) * ELEM)
    edges_region = heap.alloc("edges", max(graph.num_edges, 1) * ELEM)
    prop_a = heap.alloc("prop_a", graph.num_vertices * ELEM)
    prop_b = heap.alloc("prop_b", graph.num_vertices * ELEM)
    return GraphLayout(graph, offsets_region, edges_region, prop_a, prop_b)


def graph_for_footprint(footprint_bytes: int, avg_degree: int = 8,
                        seed: int = 7) -> CsrGraph:
    """Size an RMAT graph so CSR + properties fit ``footprint_bytes``."""
    # bytes ~= n*(1+avg_degree+2)*8
    n = max(256, footprint_bytes // ((avg_degree + 3) * ELEM))
    return rmat_graph(n, avg_degree=avg_degree, seed=seed)


def line_sample(addrs: np.ndarray) -> np.ndarray:
    """Collapse consecutive same-cache-line addresses (one access per line).

    Traversal emitters produce element-granular addresses; the simulator
    works at line granularity, and consecutive elements on one line would
    all be trivial L1 hits.  Keeping one access per line run keeps traces
    short without changing miss behaviour.
    """
    if len(addrs) == 0:
        return addrs
    lines = addrs >> units.LINE_SHIFT
    keep = np.empty(len(addrs), dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    return addrs[keep]
