"""GAPBS kernel trace generators (SSSP, BFS, PR, CC, BC, TC).

Each host owns a contiguous vertex partition and runs a real traversal over
a shared RMAT/CSR graph (Section 5.1.1: GAPBS on Kron inputs).  The
resulting access streams exhibit exactly the structure the paper's analysis
relies on:

* **adjacency data** (offsets + neighbor arrays of the own partition) is
  scanned sequentially and repeatedly by one host only — the page-affine
  data partial migration wins on,
* **vertex property arrays** (ranks, parents, distances, labels) are read
  per-edge at the neighbor's index — fine-grained cross-host traffic that
  makes whole-page migration harmful,
* power-law hubs are touched by every host and stay cache-resident.

Traversals are chunked and numpy-vectorized; consecutive same-line element
accesses are collapsed to one record (see
:func:`repro.workloads.graph.line_sample`).
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from .. import units
from .graph import (
    ELEM,
    GraphLayout,
    graph_for_footprint,
    layout_graph,
    line_sample,
)
from .trace import (
    AccessRecord,
    StreamBuilder,
    WorkloadTrace,
    partition_region,
)

#: Vertices processed per emission chunk.
CHUNK = 64


def _partition_bounds(n: int, host: int, hosts: int) -> range:
    per = n // hosts
    start = host * per
    end = (host + 1) * per if host < hosts - 1 else n
    return range(start, end)


def _interleave_shuffle(rng: np.random.Generator,
                        arrays: List[np.ndarray],
                        writes: List[float]) -> "tuple[np.ndarray, np.ndarray]":
    """Concatenate address groups and lightly shuffle within the chunk."""
    addrs = np.concatenate(arrays)
    wr = np.concatenate([
        (rng.random(len(a)) < frac).astype(np.int64)
        for a, frac in zip(arrays, writes)
    ])
    if len(addrs) > 2:
        # A partial shuffle: swap halves of random windows, preserving most
        # spatial locality while avoiding strictly phase-ordered chunks.
        order = np.argsort(rng.random(len(addrs)) * 0.25
                           + np.arange(len(addrs)) / len(addrs))
        addrs = addrs[order]
        wr = wr[order]
    return addrs, wr


class _GapbsEmitter:
    """Shared walker scaffolding for the six kernels."""

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.rng = ctx.rng
        graph = graph_for_footprint(ctx.scale.footprint_bytes, seed=ctx.scale.seed)
        self.layout: GraphLayout = layout_graph(ctx.heap, graph)
        self.graph = graph

    def host_stream(
        self,
        host: int,
        emit_chunk: Callable[[np.ndarray], "tuple[np.ndarray, np.ndarray]"],
        mean_gap: int = 9,
    ) -> List[AccessRecord]:
        ctx = self.ctx
        budget = ctx.scale.accesses_per_host
        part = _partition_bounds(self.graph.num_vertices, host, ctx.num_hosts)
        vertices = np.arange(part.start, part.stop, dtype=np.int64)
        # Hub locality: high-degree vertices are revisited far more often
        # (frontier re-expansion, convergence sweeps), concentrating traffic
        # on a hot head of each partition the way real power-law graph
        # workloads do.  One chunk in three replays the hot head.
        hot_head = vertices[: max(CHUNK, len(vertices) // 4)]
        replay_rng = np.random.default_rng(9176 + host)
        addr_parts: List[np.ndarray] = []
        write_parts: List[np.ndarray] = []
        emitted = 0
        cursor = 0
        while emitted < budget:
            if replay_rng.random() < 0.4:
                start = replay_rng.integers(
                    0, max(1, len(hot_head) - CHUNK + 1)
                )
                chunk = hot_head[start:start + CHUNK]
            else:
                chunk = vertices[cursor:cursor + CHUNK]
                cursor += CHUNK
                if cursor >= len(vertices):
                    cursor = 0
            if len(chunk) == 0:
                cursor = 0
                continue
            addrs, writes = emit_chunk(chunk)
            if len(addrs) == 0:
                continue
            addr_parts.append(addrs)
            write_parts.append(writes)
            emitted += len(addrs)
        addrs = np.concatenate(addr_parts)[:budget]
        writes = np.concatenate(write_parts)[:budget]
        builder = StreamBuilder(
            np.random.default_rng(ctx.scale.seed * 1009 + host),
            cores=ctx.cores_per_host,
            mean_gap=mean_gap,
        )
        return builder.from_arrays(addrs, writes)

    def neighbors_of(self, chunk: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """(neighbor vertex ids, edge indexes) for a contiguous chunk."""
        off = self.graph.offsets
        start = int(off[chunk[0]])
        end = int(off[chunk[-1] + 1])
        edge_idx = np.arange(start, end, dtype=np.int64)
        return self.graph.neighbors[start:end], edge_idx


def _make_trace(ctx, name: str, streams, mlp: float, rw: float,
                description: str, layout: GraphLayout) -> WorkloadTrace:
    return WorkloadTrace(
        name=name,
        num_hosts=ctx.num_hosts,
        streams=streams,
        footprint_bytes=ctx.heap.used,
        regions=list(ctx.heap.regions),
        mlp=mlp,
        read_write_ratio=rw,
        description=description,
    )


def generate_pr(ctx) -> WorkloadTrace:
    """PageRank: pull-style iteration (strong locality, per-edge rank reads).

    Real PR double-buffers the rank vector and swaps the read/write roles
    each iteration, so the array one host *wrote* this pass is *read* by
    every host next pass — the cross-host pattern that makes whole-page
    migration of rank pages harmful.
    """
    em = _GapbsEmitter(ctx)
    lay = em.layout
    rng = em.rng
    part_len = max(1, em.graph.num_vertices // ctx.num_hosts)

    def make_emit(host: int):
        state = {"done": 0}

        def emit(chunk: np.ndarray):
            pass_idx = state["done"] // part_len
            state["done"] += len(chunk)
            if pass_idx % 2 == 0:
                read_addr, write_addr = lay.prop_a_addr, lay.prop_b_addr
            else:
                read_addr, write_addr = lay.prop_b_addr, lay.prop_a_addr
            ns, edge_idx = em.neighbors_of(chunk)
            # Sorted adjacency lists make consecutive neighbor-rank reads
            # collapse onto shared lines; hub ranks stay cache-resident, so
            # only a sampled tail reaches memory.
            sel = rng.random(len(ns)) < 0.08
            groups = [
                line_sample(lay.offsets_addr(chunk)),
                line_sample(lay.edge_addr(edge_idx)),
                line_sample(read_addr(ns[sel])),
                line_sample(write_addr(chunk)),
            ]
            return _interleave_shuffle(rng, groups, [0.0, 0.0, 0.0, 1.0])
        return emit

    streams = [em.host_stream(h, make_emit(h)) for h in range(ctx.num_hosts)]
    return _make_trace(ctx, "pr", streams, mlp=6.0, rw=0.9,
                       description="PageRank over RMAT (GAPBS)", layout=lay)


def generate_cc(ctx) -> WorkloadTrace:
    """Connected components: label propagation (reads+writes one array)."""
    em = _GapbsEmitter(ctx)
    lay = em.layout
    rng = em.rng

    def make_emit(host: int):
        def emit(chunk: np.ndarray):
            ns, edge_idx = em.neighbors_of(chunk)
            sel = rng.random(len(ns)) < 0.08
            groups = [
                line_sample(lay.offsets_addr(chunk)),
                line_sample(lay.edge_addr(edge_idx)),
                line_sample(lay.prop_a_addr(ns[sel])),  # neighbor labels
                line_sample(lay.prop_a_addr(chunk)),  # own labels (written)
            ]
            return _interleave_shuffle(rng, groups, [0.0, 0.0, 0.05, 0.8])
        return emit

    streams = [em.host_stream(h, make_emit(h)) for h in range(ctx.num_hosts)]
    return _make_trace(ctx, "cc", streams, mlp=5.0, rw=0.85,
                       description="Connected components (GAPBS)", layout=lay)


def _frontier_emitter(em: _GapbsEmitter, write_prob: float,
                      revisit: float) -> Callable:
    """BFS-family walker: frontier expansion with cross-host property writes."""
    lay = em.layout
    rng = em.rng

    def make_emit(host: int):
        visited: Dict[int, bool] = {}

        def emit(chunk: np.ndarray):
            ns, edge_idx = em.neighbors_of(chunk)
            if len(ns) == 0:
                return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            # Frontier checks read parent/distance of every neighbor; a
            # fraction get written (first visit or relaxation).
            sel = rng.random(len(ns)) < 0.12
            touched = ns[sel]
            groups = [
                line_sample(lay.offsets_addr(chunk)),
                line_sample(lay.edge_addr(edge_idx)),
                line_sample(lay.prop_b_addr(touched)),
            ]
            return _interleave_shuffle(
                rng, groups, [0.0, 0.0, write_prob]
            )
        return emit

    return make_emit


def generate_bfs(ctx) -> WorkloadTrace:
    """Breadth-first search: frontier expansion with parent-array writes."""
    em = _GapbsEmitter(ctx)
    make_emit = _frontier_emitter(em, write_prob=0.35, revisit=0.0)
    streams = [em.host_stream(h, make_emit(h), mean_gap=8)
               for h in range(ctx.num_hosts)]
    return _make_trace(ctx, "bfs", streams, mlp=5.0, rw=0.8,
                       description="BFS over RMAT (GAPBS)", layout=em.layout)


def generate_sssp(ctx) -> WorkloadTrace:
    """Single-source shortest paths: delta-stepping-like re-relaxations."""
    em = _GapbsEmitter(ctx)
    make_emit = _frontier_emitter(em, write_prob=0.25, revisit=0.4)
    streams = [em.host_stream(h, make_emit(h), mean_gap=8)
               for h in range(ctx.num_hosts)]
    return _make_trace(ctx, "sssp", streams, mlp=6.0, rw=0.8,
                       description="SSSP over RMAT (GAPBS)", layout=em.layout)


def generate_bc(ctx) -> WorkloadTrace:
    """Betweenness centrality: BFS forward pass + dependency back-propagation."""
    em = _GapbsEmitter(ctx)
    lay = em.layout
    rng = em.rng

    def make_emit(host: int):
        def emit(chunk: np.ndarray):
            ns, edge_idx = em.neighbors_of(chunk)
            sel = rng.random(len(ns)) < 0.08
            groups = [
                line_sample(lay.offsets_addr(chunk)),
                line_sample(lay.edge_addr(edge_idx)),
                line_sample(lay.prop_b_addr(ns[sel])),  # path counts (read)
                line_sample(lay.prop_a_addr(ns[rng.random(len(ns)) < 0.05])),
                line_sample(lay.prop_a_addr(chunk)),
            ]
            return _interleave_shuffle(
                rng, groups, [0.0, 0.0, 0.1, 0.5, 0.7]
            )
        return emit

    streams = [em.host_stream(h, make_emit(h)) for h in range(ctx.num_hosts)]
    return _make_trace(ctx, "bc", streams, mlp=5.0, rw=0.75,
                       description="Betweenness centrality (GAPBS)",
                       layout=lay)


def generate_tc(ctx) -> WorkloadTrace:
    """Triangle counting: adjacency-list intersections (read-only, bursty)."""
    em = _GapbsEmitter(ctx)
    lay = em.layout
    rng = em.rng
    graph = em.graph

    def make_emit(host: int):
        def emit(chunk: np.ndarray):
            ns, edge_idx = em.neighbors_of(chunk)
            groups = [
                line_sample(lay.offsets_addr(chunk)),
                line_sample(lay.edge_addr(edge_idx)),
            ]
            # Intersect with a few neighbors' adjacency lists: sequential
            # bursts at *random* (often remote-partition) CSR locations.
            if len(ns):
                probes = ns[rng.integers(0, len(ns),
                                         size=min(8, len(ns)))]
                for v in probes.tolist():
                    start = int(graph.offsets[v])
                    end = int(graph.offsets[v + 1])
                    if end > start:
                        burst = np.arange(start, min(end, start + 32),
                                          dtype=np.int64)
                        groups.append(line_sample(lay.edge_addr(burst)))
            writes = [0.0] * len(groups)
            return _interleave_shuffle(rng, groups, writes)
        return emit

    streams = [em.host_stream(h, make_emit(h), mean_gap=11)
               for h in range(ctx.num_hosts)]
    return _make_trace(ctx, "tc", streams, mlp=4.0, rw=1.0,
                       description="Triangle counting (GAPBS)", layout=lay)
