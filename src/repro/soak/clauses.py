"""Fault clauses: the composable, minimizable unit of a chaos schedule.

A soak trial's fault plan is a *list of clauses* — one clause per fault
source (transfer errors, a degraded-link window, host stalls, poisoned
lines, deliberate rollback sabotage).  Keeping the sources as separate
list items is what makes delta-debugging meaningful: the minimizer drops
whole clauses and asks "does the failure still reproduce?", converging on
the smallest set of fault sources that matter (e.g. a corruption bug that
needs transfer errors *and* sabotage, but not the stall/poison noise the
trial also drew).

:func:`build_fault_config` folds a clause list into the scalar
:class:`~repro.config.FaultConfig` the simulator consumes; the fold is
deterministic and order-independent so a minimized sub-list builds the
exact sub-plan it claims to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from ..config import FaultConfig

#: Clause kinds, in canonical fold order.
KINDS = ("errors", "degrade", "stall", "poison", "crash", "sabotage")


@dataclass(frozen=True)
class FaultClause:
    """One fault source with its parameters (plain JSON-safe data)."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown clause kind {self.kind!r}; choose from {KINDS}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultClause":
        return cls(kind=data["kind"], params=dict(data.get("params") or {}))

    def describe(self) -> str:
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.kind}({inner})"


def build_fault_config(
    clauses: Sequence[FaultClause],
    seed: int,
    watchdog_period_ns: float = 20_000.0,
    watchdog_mode: str = "fail-fast",
) -> FaultConfig:
    """Fold a clause list into one validated :class:`FaultConfig`.

    Clauses of the same kind merge conservatively (max rates, widest
    window, summed counts) so dropping any clause never *adds* fault
    pressure — the monotonicity delta debugging relies on.  The watchdog
    is always armed: a soak run without an auditor proves nothing.
    """
    values: Dict[str, Any] = {
        "seed": seed,
        "watchdog_period_ns": watchdog_period_ns,
        "watchdog_mode": watchdog_mode,
    }
    for clause in clauses:
        p = clause.params
        if clause.kind == "errors":
            values["transfer_error_rate"] = max(
                values.get("transfer_error_rate", 0.0),
                float(p.get("transfer_error_rate", 0.0)),
            )
            if "max_attempts" in p:
                values["max_attempts"] = int(p["max_attempts"])
            if "migration_timeout_ns" in p:
                values["migration_timeout_ns"] = float(
                    p["migration_timeout_ns"]
                )
        elif clause.kind == "degrade":
            values["degrade_start_ns"] = min(
                values.get("degrade_start_ns", float("inf")),
                float(p.get("start_ns", 0.0)),
            )
            values["degrade_end_ns"] = max(
                values.get("degrade_end_ns", 0.0),
                float(p.get("end_ns", 0.0)),
            )
            values["degrade_latency_x"] = max(
                values.get("degrade_latency_x", 1.0),
                float(p.get("latency_x", 1.0)),
            )
            values["degrade_bandwidth_x"] = max(
                values.get("degrade_bandwidth_x", 1.0),
                float(p.get("bandwidth_x", 1.0)),
            )
            hosts = set(values.get("degrade_hosts", ()))
            hosts.update(int(h) for h in p.get("hosts", ()))
            values["degrade_hosts"] = tuple(sorted(hosts))
        elif clause.kind == "stall":
            period = float(p.get("period_ns", 0.0))
            if period > 0:
                values["stall_period_ns"] = min(
                    values.get("stall_period_ns", float("inf")), period
                )
            values["stall_duration_ns"] = max(
                values.get("stall_duration_ns", 0.0),
                float(p.get("duration_ns", 0.0)),
            )
            hosts = set(values.get("stall_hosts", ()))
            hosts.update(int(h) for h in p.get("hosts", ()))
            values["stall_hosts"] = tuple(sorted(hosts))
        elif clause.kind == "poison":
            values["poison_count"] = values.get("poison_count", 0) + int(
                p.get("count", 0)
            )
            period = float(p.get("period_ns", 0.0))
            if period > 0:
                values["poison_period_ns"] = min(
                    values.get("poison_period_ns", float("inf")), period
                )
        elif clause.kind == "crash":
            # Earliest crash wins (more of the run is affected); a
            # permanent crash (rejoin 0) dominates any finite rejoin,
            # else the latest rejoin (longest outage) wins.
            values["crash_at_ns"] = min(
                values.get("crash_at_ns", float("inf")),
                float(p.get("at_ns", 0.0)),
            )
            host = int(p.get("host", 1))
            values["crash_host"] = min(values.get("crash_host", host), host)
            rejoin = float(p.get("rejoin_ns", 0.0))
            prev = values.get("crash_rejoin_ns")
            if prev is None:
                values["crash_rejoin_ns"] = rejoin
            elif prev == 0.0 or rejoin == 0.0:
                values["crash_rejoin_ns"] = 0.0
            else:
                values["crash_rejoin_ns"] = max(prev, rejoin)
            if "governor_hold_ns" in p:
                values["governor_hold_ns"] = max(
                    values.get("governor_hold_ns", 0.0),
                    float(p["governor_hold_ns"]),
                )
        elif clause.kind == "sabotage":
            values["rollback_sabotage_count"] = values.get(
                "rollback_sabotage_count", 0
            ) + int(p.get("count", 1))
    config = FaultConfig(**values)
    config.validate()
    return config


def draw_clauses(
    rng, sabotage_rate: float = 0.0, crash_rate: float = 0.0
) -> List[FaultClause]:
    """Draw one trial's randomized clause list from ``rng``.

    Parameter ranges are calibrated to tiny/small scaled runs (hundreds
    of microseconds of simulated time) so every drawn window actually
    overlaps the run.  ``sabotage_rate`` is the probability of including
    a deliberate-corruption clause — zero for real chaos testing (random
    faults must never corrupt state), nonzero to self-test the
    detection/minimization pipeline.  ``crash_rate`` is the probability
    of including a host-crash clause; it consumes RNG draws only when
    nonzero, so legacy seeds replay unchanged at the default.
    """
    clauses: List[FaultClause] = []
    if rng.random() < 0.9:
        clauses.append(FaultClause("errors", {
            "transfer_error_rate": round(10 ** rng.uniform(-3.0, -0.5), 6),
            "max_attempts": rng.randint(2, 4),
        }))
    if rng.random() < 0.5:
        start = rng.uniform(0.0, 3e5)
        clauses.append(FaultClause("degrade", {
            "start_ns": round(start, 1),
            "end_ns": round(start + rng.uniform(1e5, 1e6), 1),
            "latency_x": round(rng.uniform(2.0, 8.0), 2),
            "bandwidth_x": round(rng.uniform(2.0, 8.0), 2),
        }))
    if rng.random() < 0.4:
        clauses.append(FaultClause("stall", {
            "period_ns": round(rng.uniform(5e4, 2e5), 1),
            "duration_ns": round(rng.uniform(1e4, 5e4), 1),
        }))
    if rng.random() < 0.4:
        clauses.append(FaultClause("poison", {
            "count": rng.randint(4, 32),
            "period_ns": round(rng.uniform(5e3, 5e4), 1),
        }))
    if crash_rate > 0 and rng.random() < crash_rate:
        at = rng.uniform(5e4, 2.5e5)
        params = {"host": rng.randint(1, 3), "at_ns": round(at, 1)}
        if rng.random() < 0.5:
            params["rejoin_ns"] = round(at + rng.uniform(1e5, 3e5), 1)
        clauses.append(FaultClause("crash", params))
    if rng.random() < sabotage_rate:
        clauses.append(FaultClause("sabotage", {
            "count": rng.randint(1, 3),
        }))
    return clauses
