"""Chaos soak harness: randomized fault schedules under a fail-fast auditor.

Each trial draws a randomized (workload, scheme) pair and a randomized
fault-clause schedule from one seeded RNG, folds the clauses into a
:class:`~repro.config.FaultConfig` with the
:class:`~repro.faults.watchdog.InvariantWatchdog` armed in fail-fast
mode, and runs the simulation uncached.  A healthy system survives any
random fault schedule with consistent state — so a watchdog violation
(or any crash) is a finding, not noise.

On the first failure the harness:

1. re-runs the identical trial to confirm the failure is deterministic
   (everything is a pure function of the seeds, so it must be);
2. delta-debugs the clause schedule (:func:`~repro.soak.minimize.ddmin`)
   down to a 1-minimal failing sub-schedule;
3. emits a JSON reproducer artifact embedding the fully-serialized
   minimal :class:`~repro.sweep.spec.ExperimentSpec`;
4. re-executes the artifact through the same path ``soak --replay``
   uses, verifying the reproducer stands alone.

Failures are matched by *signature* — exception type plus the watchdog's
violation kinds — not by message text, which embeds page addresses that
legitimately shift as the schedule shrinks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple, Union

import random

from ..config import SystemConfig
from ..faults.watchdog import WatchdogError
from ..sim.harness import run_experiment_spec
from ..sweep.spec import ExperimentSpec
from ..sweep.store import atomic_write_json
from ..workloads.trace import WorkloadScale
from .clauses import FaultClause, build_fault_config, draw_clauses
from .minimize import ddmin

#: Reproducer artifact format version.
ARTIFACT_VERSION = 1

#: Named workload scales a soak run may draw from.
SCALES = {
    "tiny": WorkloadScale.tiny,
    "small": WorkloadScale.small,
    "default": WorkloadScale.default,
}


@dataclass(frozen=True)
class FailureSignature:
    """What makes two failures "the same" across schedule shrinking."""

    exc_type: str
    kinds: Tuple[str, ...]  # watchdog violation kinds; empty for crashes
    message: str  # informational only; never compared

    def matches(self, other: Optional["FailureSignature"]) -> bool:
        return (
            other is not None
            and self.exc_type == other.exc_type
            and self.kinds == other.kinds
        )

    def to_dict(self) -> dict:
        return {
            "exc_type": self.exc_type,
            "kinds": list(self.kinds),
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailureSignature":
        return cls(
            exc_type=data["exc_type"],
            kinds=tuple(data.get("kinds") or ()),
            message=str(data.get("message", "")),
        )


def run_trial(spec: ExperimentSpec) -> Optional[FailureSignature]:
    """Run one spec uncached; None = survived, signature = failed."""
    try:
        run_experiment_spec(spec)
    except WatchdogError as exc:
        return FailureSignature(
            exc_type="WatchdogError",
            kinds=tuple(exc.kinds),
            message=str(exc)[:500],
        )
    except Exception as exc:  # any crash is a finding
        return FailureSignature(
            exc_type=type(exc).__name__,
            kinds=(),
            message=str(exc)[:500],
        )
    return None


@dataclass(frozen=True)
class SoakTrial:
    """One fully-determined trial: identity plus its clause schedule."""

    seed: int  # the FaultConfig seed (derived from the soak seed)
    workload: str
    scheme: str
    scale_name: str
    num_hosts: int
    clauses: Tuple[FaultClause, ...]
    watchdog_period_ns: float

    def spec(
        self, clauses: Optional[Sequence[FaultClause]] = None
    ) -> ExperimentSpec:
        """The trial's executable spec, optionally with a sub-schedule."""
        use = tuple(self.clauses if clauses is None else clauses)
        faults = build_fault_config(
            use, seed=self.seed,
            watchdog_period_ns=self.watchdog_period_ns,
        )
        config = SystemConfig.scaled(num_hosts=self.num_hosts).replace(
            faults=faults
        )
        return ExperimentSpec.build(
            workload=self.workload,
            scheme=self.scheme,
            config=config,
            scale=SCALES[self.scale_name](),
        )

    def describe(self) -> str:
        inner = " + ".join(c.describe() for c in self.clauses) or "(idle)"
        return f"{self.workload}/{self.scheme} seed={self.seed} {inner}"


@dataclass
class SoakReport:
    """What one soak invocation found."""

    trials_run: int = 0
    wall_s: float = 0.0
    failure_found: bool = False
    trial_index: int = -1
    signature: Optional[FailureSignature] = None
    deterministic: bool = False
    original_clause_count: int = 0
    minimal_clauses: List[FaultClause] = field(default_factory=list)
    minimize_evaluations: int = 0
    artifact_path: Optional[str] = None
    replay_verified: bool = False

    @property
    def clean(self) -> bool:
        return not self.failure_found


class SoakHarness:
    """Seeded chaos soak: randomized trials, minimize-on-failure."""

    def __init__(
        self,
        seed: int = 0,
        trials: int = 20,
        budget_s: float = 120.0,
        scale: str = "tiny",
        num_hosts: int = 4,
        workloads: Sequence[str] = ("pr", "ycsb"),
        schemes: Sequence[str] = ("pipm", "memtis"),
        sabotage_rate: float = 0.0,
        crash_rate: float = 0.0,
        watchdog_period_ns: float = 20_000.0,
        minimize_budget: int = 32,
        artifact_dir: Union[str, Path] = "soak-artifacts",
    ) -> None:
        if trials < 1:
            raise ValueError("trials must be >= 1")
        if scale not in SCALES:
            raise ValueError(
                f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
            )
        if not 0.0 <= sabotage_rate <= 1.0:
            raise ValueError("sabotage_rate must be in [0, 1]")
        if not 0.0 <= crash_rate <= 1.0:
            raise ValueError("crash_rate must be in [0, 1]")
        self.seed = seed
        self.trials = trials
        self.budget_s = budget_s
        self.scale = scale
        self.num_hosts = num_hosts
        self.workloads = list(workloads)
        self.schemes = list(schemes)
        self.sabotage_rate = sabotage_rate
        self.crash_rate = crash_rate
        self.watchdog_period_ns = watchdog_period_ns
        self.minimize_budget = minimize_budget
        self.artifact_dir = Path(artifact_dir)

    # ------------------------------------------------------------------
    def draw_trial(self, rng: random.Random, index: int) -> SoakTrial:
        """One randomized trial; every draw comes from ``rng``."""
        workload = rng.choice(self.workloads)
        scheme = rng.choice(self.schemes)
        clauses = draw_clauses(
            rng, sabotage_rate=self.sabotage_rate, crash_rate=self.crash_rate
        )
        return SoakTrial(
            seed=rng.randrange(1 << 30),
            workload=workload,
            scheme=scheme,
            scale_name=self.scale,
            num_hosts=self.num_hosts,
            clauses=tuple(clauses),
            watchdog_period_ns=self.watchdog_period_ns,
        )

    def run(
        self, progress: Optional[Callable[[str], None]] = None
    ) -> SoakReport:
        """Run trials until one fails, the count runs out, or the budget."""
        say = progress or (lambda _line: None)
        rng = random.Random(self.seed)
        report = SoakReport()
        started = perf_counter()
        for index in range(self.trials):
            if (
                index > 0
                and self.budget_s > 0
                and perf_counter() - started >= self.budget_s
            ):
                say(f"  budget of {self.budget_s:g}s exhausted after "
                    f"{index} trial(s)")
                break
            trial = self.draw_trial(rng, index)
            t0 = perf_counter()
            signature = run_trial(trial.spec())
            elapsed = perf_counter() - t0
            report.trials_run = index + 1
            if signature is None:
                say(f"  [ok  ] #{index:<3} {trial.describe():<72} "
                    f"{elapsed:6.2f}s")
                continue
            say(f"  [FAIL] #{index:<3} {trial.describe()}")
            say(f"         {signature.exc_type}: {signature.message[:100]}")
            self._investigate(report, trial, index, signature, say)
            break
        report.wall_s = perf_counter() - started
        return report

    # ------------------------------------------------------------------
    def _investigate(
        self,
        report: SoakReport,
        trial: SoakTrial,
        index: int,
        signature: FailureSignature,
        say,
    ) -> None:
        """Confirm, minimize, emit, and replay-verify one failure."""
        report.failure_found = True
        report.trial_index = index
        report.signature = signature
        report.original_clause_count = len(trial.clauses)
        confirm = run_trial(trial.spec())
        report.deterministic = signature.matches(confirm)
        if not report.deterministic:
            say("  [warn] failure did not reproduce on the confirm re-run; "
                "emitting the unminimized schedule")
            report.minimal_clauses = list(trial.clauses)
        else:
            evaluated = 0

            def still_fails(clauses: List[FaultClause]) -> bool:
                return signature.matches(run_trial(trial.spec(clauses)))

            minimal, evaluated = ddmin(
                list(trial.clauses), still_fails, budget=self.minimize_budget
            )
            report.minimal_clauses = minimal
            report.minimize_evaluations = evaluated
            say(f"  minimized {len(trial.clauses)} clause(s) -> "
                f"{len(minimal)} in {evaluated} evaluation(s)")
        path = self._emit_artifact(report, trial)
        report.artifact_path = str(path)
        say(f"  reproducer written to {path}")
        reproduced, _actual = replay_artifact(path)
        report.replay_verified = reproduced
        say(f"  replay verification: "
            f"{'reproduced' if reproduced else 'DID NOT reproduce'}")

    def _emit_artifact(self, report: SoakReport, trial: SoakTrial) -> Path:
        spec = trial.spec(report.minimal_clauses)
        payload = {
            "v": ARTIFACT_VERSION,
            "kind": "soak-reproducer",
            "soak_seed": self.seed,
            "trial_index": report.trial_index,
            "trial": {
                "seed": trial.seed,
                "workload": trial.workload,
                "scheme": trial.scheme,
                "scale": trial.scale_name,
                "num_hosts": trial.num_hosts,
                "watchdog_period_ns": trial.watchdog_period_ns,
            },
            "original_clauses": [c.to_dict() for c in trial.clauses],
            "clauses": [c.to_dict() for c in report.minimal_clauses],
            "deterministic": report.deterministic,
            "minimize_evaluations": report.minimize_evaluations,
            "failure": report.signature.to_dict(),
            "spec": spec.to_dict(),
        }
        self.artifact_dir.mkdir(parents=True, exist_ok=True)
        path = self.artifact_dir / (
            f"repro-seed{self.seed}-trial{report.trial_index}.json"
        )
        atomic_write_json(path, payload)
        return path


# ----------------------------------------------------------------------
def replay_artifact(
    path: Union[str, Path]
) -> Tuple[bool, Optional[FailureSignature]]:
    """Re-execute a reproducer artifact deterministically.

    Rebuilds the embedded :class:`ExperimentSpec` (no RNG re-draws — the
    artifact *is* the schedule), runs it uncached, and compares the
    failure signature against the recorded one.  Returns
    ``(reproduced, actual_signature)``.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "soak-reproducer":
        raise ValueError(f"{path} is not a soak reproducer artifact")
    version = payload.get("v")
    if version != ARTIFACT_VERSION:
        raise ValueError(
            f"artifact format v{version} is not supported "
            f"(this build speaks v{ARTIFACT_VERSION})"
        )
    expected = FailureSignature.from_dict(payload["failure"])
    spec = ExperimentSpec.from_dict(payload["spec"])
    actual = run_trial(spec)
    return expected.matches(actual), actual
