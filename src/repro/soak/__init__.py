"""Chaos soak harness: randomized fault schedules, fail-fast auditing,
and delta-debugging minimization of failing schedules.

``python -m repro soak`` composes randomized seeded fault plans
(:mod:`repro.faults`) with randomized workload/scheme draws, runs them
under the invariant watchdog in fail-fast mode, and on any violation or
crash shrinks the failing schedule to a minimal reproducer JSON that
``soak --replay <file>`` re-executes deterministically.
"""

from .clauses import FaultClause, build_fault_config, draw_clauses
from .harness import (
    ARTIFACT_VERSION,
    FailureSignature,
    SoakHarness,
    SoakReport,
    SoakTrial,
    replay_artifact,
    run_trial,
)
from .minimize import ddmin

__all__ = [
    "FaultClause",
    "build_fault_config",
    "draw_clauses",
    "ARTIFACT_VERSION",
    "FailureSignature",
    "SoakHarness",
    "SoakReport",
    "SoakTrial",
    "replay_artifact",
    "run_trial",
    "ddmin",
]
