"""Delta debugging: shrink a failing schedule to a 1-minimal one.

Zeller's ``ddmin`` over an abstract item list: partition the failing
list into chunks, try removing each chunk's complement... more precisely,
try each *complement* (the list with one chunk removed); if any
complement still fails, recurse on it with coarser granularity, otherwise
refine the partition.  Termination: the result is 1-minimal — removing
any single remaining item makes the failure disappear — unless the
evaluation budget ran out first (each ``still_fails`` call here is a full
simulation, so the budget is wall-clock insurance).

The predicate receives a candidate *sub-list* (order preserved) and must
return True iff the original failure still reproduces under it.
Monotonicity is not required for correctness of the "still fails" claim —
the returned list is always one that passed the predicate — only for the
minimal result to be unique.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def ddmin(
    items: Sequence[T],
    still_fails: Callable[[List[T]], bool],
    budget: int = 64,
) -> Tuple[List[T], int]:
    """Shrink ``items`` (a known-failing list) to a 1-minimal failing list.

    Returns ``(minimal_items, evaluations_used)``.  ``items`` itself is
    assumed failing and is never re-evaluated; an exhausted ``budget``
    returns the best (smallest) failing list found so far.
    """
    if budget < 1:
        return list(items), 0
    current: List[T] = list(items)
    evaluations = 0
    if not current:
        return current, evaluations
    # Degenerate fast path: does the empty schedule fail on its own?
    # (A failure that needs no clauses at all is a plain crash; report
    # the empty list so the artifact says exactly that.)
    evaluations += 1
    if still_fails([]):
        return [], evaluations
    granularity = 2
    while len(current) >= 2 and evaluations < budget:
        chunk = max(1, len(current) // granularity)
        complements = [
            current[:start] + current[start + chunk:]
            for start in range(0, len(current), chunk)
        ]
        reduced = False
        for complement in complements:
            if evaluations >= budget:
                return current, evaluations
            evaluations += 1
            if still_fails(complement):
                current = complement
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break  # 1-minimal: no single removal still fails
            granularity = min(len(current), granularity * 2)
    return current, evaluations
